// Command hdlsim runs a single hierarchical DLS experiment on the simulated
// miniHPC cluster and reports the paper's metric (parallel loop time) plus
// the overhead breakdown, optionally with an ASCII Gantt chart (the
// reproduction of the paper's Figures 2 and 3) and a CSV event trace.
//
// Examples:
//
//	hdlsim -app mandelbrot -inter GSS -intra STATIC -approach mpi+mpi -nodes 4
//	hdlsim -app psia -inter FAC2 -intra SS -approach mpi+openmp -nodes 8 -scale 32
//	hdlsim -app mandelbrot -inter GSS -intra STATIC -nodes 1 -workers 8 -gantt -scale 256
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/dls"
	"repro/hdls"
	"repro/internal/stats"
)

func main() {
	var (
		appName  = flag.String("app", "mandelbrot", "application: mandelbrot | psia")
		interS   = flag.String("inter", "GSS", "inter-node DLS technique (STATIC, SS, GSS, TSS, FAC, FAC2, TFSS, FSC)")
		intraS   = flag.String("intra", "STATIC", "intra-node DLS technique (STATIC, SS, GSS, TSS, FAC2, ...)")
		approach = flag.String("approach", "mpi+mpi", "mpi+mpi | mpi+openmp | nowait")
		nodes    = flag.Int("nodes", 4, "number of compute nodes")
		workers  = flag.Int("workers", 16, "workers (ranks or threads) per node")
		scale    = flag.Int("scale", 8, "workload scale divisor (1 = full size)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		noise    = flag.Float64("noise", 0, "systemic noise CoV (0 = smooth machine)")
		extended = flag.Bool("extended", false, "enable the extended OpenMP runtime (TSS/FAC2 intra)")
		gantt    = flag.Bool("gantt", false, "print an ASCII Gantt chart of the execution")
		csvPath  = flag.String("trace-csv", "", "write the event trace to this CSV file")
		jsonPath = flag.String("trace-chrome", "", "write the event trace as Chrome tracing JSON (chrome://tracing, Perfetto)")
	)
	flag.Parse()

	app, err := hdls.ParseApp(*appName)
	fatalIf(err)
	inter, err := dls.Parse(*interS)
	fatalIf(err)
	intra, err := dls.Parse(*intraS)
	fatalIf(err)
	ap, err := parseApproach(*approach)
	fatalIf(err)

	cfg := hdls.Config{
		App: app, Nodes: *nodes, WorkersPerNode: *workers,
		Inter: inter, Intra: intra, Approach: ap,
		Scale: *scale, Seed: *seed, NoiseCV: *noise,
		ExtendedRuntime: *extended,
		CollectTrace:    *gantt || *csvPath != "" || *jsonPath != "",
	}
	res, err := hdls.Run(cfg)
	fatalIf(err)

	ideal := hdls.IdealTime(app, *scale, *nodes, *workers)
	fmt.Printf("%s  %v+%v  %v  %d nodes × %d workers (scale 1/%d)\n",
		app, inter, intra, ap, *nodes, *workers, *scale)
	fmt.Printf("  parallel loop time : %s  (%.2f× ideal %s)\n",
		stats.FormatSeconds(float64(res.ParallelTime)),
		float64(res.ParallelTime)/float64(ideal),
		stats.FormatSeconds(float64(ideal)))
	fmt.Printf("  load imbalance     : %.3f (max/mean − 1 over worker finish times)\n", res.LoadImbalance)
	fmt.Printf("  global chunks      : %d\n", res.GlobalChunks)
	fmt.Printf("  local sub-chunks   : %d\n", res.LocalChunks)
	if res.LockAcquisitions > 0 {
		fmt.Printf("  Win_lock attempts  : %d for %d acquisitions (%.2f per acquisition)\n",
			res.LockAttempts, res.LockAcquisitions,
			float64(res.LockAttempts)/float64(res.LockAcquisitions))
	}
	if res.BarrierWait > 0 {
		fmt.Printf("  barrier idle time  : %s accumulated across threads\n",
			stats.FormatSeconds(float64(res.BarrierWait)))
	}

	if *gantt && res.Trace != nil {
		fmt.Println()
		fmt.Print(res.Trace.Gantt(100))
	}
	if *csvPath != "" && res.Trace != nil {
		f, err := os.Create(*csvPath)
		fatalIf(err)
		fatalIf(res.Trace.WriteCSV(f))
		fatalIf(f.Close())
		fmt.Printf("  trace written      : %s (%d events)\n", *csvPath, len(res.Trace.Events))
	}
	if *jsonPath != "" && res.Trace != nil {
		f, err := os.Create(*jsonPath)
		fatalIf(err)
		fatalIf(res.Trace.WriteChromeJSON(f))
		fatalIf(f.Close())
		fmt.Printf("  chrome trace       : %s (open in chrome://tracing)\n", *jsonPath)
	}
}

func parseApproach(s string) (hdls.Approach, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "mpi+mpi", "mpimpi", "mpi-mpi":
		return hdls.MPIMPI, nil
	case "mpi+openmp", "mpiopenmp", "mpi-openmp", "openmp":
		return hdls.MPIOpenMP, nil
	case "nowait", "mpi+openmp-nowait":
		return hdls.MPIOpenMPNoWait, nil
	}
	return 0, fmt.Errorf("unknown approach %q", s)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdlsim:", err)
		os.Exit(1)
	}
}
