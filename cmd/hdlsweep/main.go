// Command hdlsweep regenerates the paper's evaluation: Figures 4–7 (both
// applications, all intra-node techniques, 2–16 nodes, both approaches).
// It prints the tables to stdout and optionally writes CSV files per
// figure, the inputs EXPERIMENTS.md is built from. Figure cells are
// independent simulations and run concurrently on the host's cores.
//
//	hdlsweep                    # all figures, quick scale (1/8)
//	hdlsweep -figure 5          # only Figure 5
//	hdlsweep -scale 1           # full-size workloads (minutes)
//	hdlsweep -extended          # fill the paper's n/a cells via the
//	                            # extended (libGOMP-style) OpenMP runtime
//	hdlsweep -json BENCH_x.json # also write a perf snapshot (see `make bench`)
//
// The robustness mode compares inter-node techniques under a scenario
// (heterogeneous topology × perturbations × synthetic workload) instead of
// regenerating the figures:
//
//	hdlsweep -robust -speeds 1,0.5
//	hdlsweep -robust -speeds 1,0.45 -cores 16,64 -workers 64
//	hdlsweep -robust -noise 0.3 -slow-rate 5 -slow-factor 3 -slow-dur 0.01 \
//	         -workload "gaussian:n=8192,cv=0.5"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/dls"
	"repro/hdls"
	"repro/internal/cliutil"
	"repro/internal/sim"
)

// benchSnapshot is the schema of the -json perf snapshot: enough to track
// the simulator's host-side throughput across kernel changes (the BENCH_*
// trajectory) together with the virtual results it produced.
type benchSnapshot struct {
	Date        string  `json:"date"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Scale       int     `json:"scale"`
	Nodes       []int   `json:"nodes"`
	Figures     []int   `json:"figures"`
	Cells       int     `json:"cells"`
	WallSeconds float64 `json:"wall_seconds"`
	CellsPerSec float64 `json:"cells_per_second"`
	// VirtualSeconds sums simulated time over all cells: the ratio of
	// simulated to host time is the kernel's headline throughput metric.
	VirtualSeconds  float64 `json:"virtual_seconds"`
	SimPerHostRatio float64 `json:"sim_per_host_ratio"`
	// CalibScore is the host's single-core integer throughput measured
	// right after the sweep (cliutil.CalibScore); the bench-trend check
	// compares cells/second normalized by it, so snapshots stay comparable
	// across host classes and neighbour load.
	CalibScore float64            `json:"calib_score,omitempty"`
	Tables     map[string]float64 `json:"cell_seconds"`
	// Robustness carries the scenario sweeps run with -robust.
	Robustness []*hdls.RobustnessResult `json:"robustness,omitempty"`
}

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure to regenerate (4..7); 0 = all")
		scale    = flag.Int("scale", 8, "workload scale divisor (1 = full size)")
		nodesCSV = flag.String("nodes", "2,4,8,16", "comma-separated node counts")
		seed     = flag.Int64("seed", 1, "simulation seed")
		extended = flag.Bool("extended", false, "fill TSS/FAC2 intra cells for MPI+OpenMP")
		outDir   = flag.String("out", "", "directory for per-figure CSV files (optional)")
		quiet    = flag.Bool("q", false, "suppress per-cell progress")
		withEff  = flag.Bool("eff", false, "also print parallel-efficiency tables")
		jsonOut  = flag.String("json", "", "write a BENCH_*.json perf snapshot to this path")
		par      = flag.Int("p", 0, "max concurrent figure cells (0 = all cores)")
		parallel = flag.Int("parallel", 0, "alias of -p: max concurrent cells (0 = all cores)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf  = flag.String("memprofile", "", "write a heap profile to this path on exit")

		robust   = flag.Bool("robust", false, "run the robustness sweep (techniques × scenario) instead of the figures")
		repeat   = flag.Int("repeat", 1, "robust: seed replicas per technique (rows report means and spread)")
		workers  = flag.Int("workers", 16, "robust: workers per node (per-node cap on heterogeneous machines)")
		rnodes   = flag.Int("rnodes", 4, "robust: number of nodes")
		techCSV  = flag.String("techniques", "", "robust: comma-separated inter techniques (default STATIC,SS,GSS,TSS,FAC2)")
		intraS   = flag.String("intra", "STATIC", "robust: intra-node technique")
		speedCSV = flag.String("speeds", "", "relative node speeds, tiled (e.g. 1,0.5)")
		coreCSV  = flag.String("cores", "", "per-node core counts, tiled (e.g. 16,64)")
		noiseCV  = flag.Float64("noise", 0, "perturbation: multiplicative noise CoV")
		slowRate = flag.Float64("slow-rate", 0, "perturbation: transient slowdowns per second per node")
		slowFac  = flag.Float64("slow-factor", 2, "perturbation: slowdown execution-time multiplier")
		slowDur  = flag.Float64("slow-dur", 0.01, "perturbation: mean slowdown duration (seconds)")
		bgCSV    = flag.String("bg", "", "perturbation: per-node background load fractions, tiled (e.g. 0,0.3)")
		wlSpec   = flag.String("workload", "", "workload spec (workload.ParseSpec) overriding the app kernels")
	)
	flag.Parse()
	if *par == 0 {
		*par = *parallel
	}

	stopProf, err := cliutil.StartProfiles(*cpuProf, *memProf)
	fatalIf(err)
	defer stopProf()

	nodes, err := cliutil.ParseNodeCounts(*nodesCSV)
	if err != nil {
		fatalIf(fmt.Errorf("-nodes: %w (want positive counts, e.g. 2,4,8,16)", err))
	}
	if *rnodes < 1 {
		fatalIf(fmt.Errorf("-rnodes: node count must be >= 1 (got %d)", *rnodes))
	}

	if *robust {
		runRobust(robustFlags{
			workers: *workers, nodes: *rnodes, techCSV: *techCSV, intraS: *intraS,
			speedCSV: *speedCSV, coreCSV: *coreCSV, noise: *noiseCV,
			slowRate: *slowRate, slowFac: *slowFac, slowDur: *slowDur, bgCSV: *bgCSV,
			workload: *wlSpec, scale: *scale, seed: *seed, par: *par, repeat: *repeat,
			outDir: *outDir, jsonOut: *jsonOut, quiet: *quiet,
		})
		return // the deferred stopProf finishes the profiles
	}

	figures := []int{4, 5, 6, 7}
	if *figure != 0 {
		figures = []int{*figure}
	}
	apps := []hdls.App{hdls.Mandelbrot, hdls.PSIA}

	start := time.Now()
	snap := benchSnapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      *scale,
		Nodes:      nodes,
		Figures:    figures,
		Tables:     map[string]float64{},
	}
	for _, fig := range figures {
		for _, app := range apps {
			opt := hdls.FigureOptions{
				Scale: *scale, Nodes: nodes, Seed: *seed, Extended: *extended,
				Parallelism: *par,
			}
			if !*quiet {
				opt.Progress = func(cell string) {
					fmt.Fprintf(os.Stderr, "  done %-55s (%6.1fs elapsed)\n", cell, time.Since(start).Seconds())
				}
			}
			fr, err := hdls.RunFigure(fig, app, opt)
			fatalIf(err)
			fmt.Println(fr.Table())
			if *withEff {
				fmt.Println(fr.EfficiencyTable(*scale, 16))
			}
			printRatios(fr)
			recordCells(&snap, fr)
			if *outDir != "" {
				fatalIf(os.MkdirAll(*outDir, 0o755))
				name := filepath.Join(*outDir, fmt.Sprintf("figure%d_%s.csv", fig, strings.ToLower(app.String())))
				fatalIf(os.WriteFile(name, []byte(fr.CSV()), 0o644))
				fmt.Printf("wrote %s\n\n", name)
			}
		}
	}
	wall := time.Since(start).Seconds()
	fmt.Printf("sweep complete in %.1fs\n", wall)
	if *jsonOut != "" {
		snap.WallSeconds = wall
		if wall > 0 {
			snap.CellsPerSec = float64(snap.Cells) / wall
			snap.SimPerHostRatio = snap.VirtualSeconds / wall
		}
		snap.CalibScore = cliutil.CalibScore()
		buf, err := json.MarshalIndent(&snap, "", "  ")
		fatalIf(err)
		fatalIf(os.WriteFile(*jsonOut, append(buf, '\n'), 0o644))
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// recordCells folds one figure's results into the perf snapshot.
func recordCells(snap *benchSnapshot, fr *hdls.FigureResult) {
	for ii, intra := range fr.Intras {
		for ni, n := range fr.Nodes {
			for _, ap := range fr.Approaches {
				v := fr.Times[ap][ii][ni]
				if v != v { // NaN: unsupported cell
					continue
				}
				key := fmt.Sprintf("fig%d/%s/%v+%v/%dn/%v", fr.Figure, fr.App, fr.Inter, intra, n, ap)
				snap.Tables[key] = v
				snap.Cells++
				snap.VirtualSeconds += v
			}
		}
	}
}

// printRatios summarizes each intra column as the MPI+OpenMP / MPI+MPI
// ratio (>1: proposed approach wins), the comparison the paper narrates.
func printRatios(fr *hdls.FigureResult) {
	var b strings.Builder
	fmt.Fprintf(&b, "  speedup of MPI+MPI over MPI+OpenMP (×):")
	for _, intra := range fr.Intras {
		fmt.Fprintf(&b, "  %v:", intra)
		any := false
		for _, n := range fr.Nodes {
			s := fr.Speedup(intra, n)
			if s != s { // NaN
				continue
			}
			fmt.Fprintf(&b, " %.2f", s)
			any = true
		}
		if !any {
			b.WriteString(" n/a")
		}
	}
	fmt.Println(b.String())
	fmt.Println()
}

// robustFlags carries the parsed -robust mode flags.
type robustFlags struct {
	workers, nodes           int
	techCSV, intraS          string
	speedCSV, coreCSV, bgCSV string
	noise, slowRate, slowFac float64
	slowDur                  float64
	workload                 string
	scale                    int
	seed                     int64
	par, repeat              int
	outDir, jsonOut          string
	quiet                    bool
}

// runRobust executes the scenario robustness sweep and writes its outputs.
func runRobust(f robustFlags) {
	start := time.Now()
	opt := hdls.RobustnessOptions{
		Nodes: f.nodes, WorkersPerNode: f.workers,
		Scale: f.scale, Seed: f.seed, Workload: f.workload,
		Parallelism: f.par, Repeats: f.repeat,
	}
	var err error
	opt.Intra, err = dls.Parse(f.intraS)
	fatalIf(err)
	if f.techCSV != "" {
		for _, name := range strings.Split(f.techCSV, ",") {
			t, err := dls.Parse(name)
			fatalIf(err)
			opt.Techniques = append(opt.Techniques, t)
		}
	}
	if f.speedCSV != "" {
		opt.Topology.NodeSpeeds, err = cliutil.ParseFloats(f.speedCSV)
		fatalIf(err)
	}
	if f.coreCSV != "" {
		opt.Topology.NodeCores, err = cliutil.ParsePositiveInts(f.coreCSV)
		fatalIf(err)
	}
	opt.Perturbation = hdls.Perturbation{
		NoiseCV:      f.noise,
		SlowdownRate: f.slowRate,
		Seed:         f.seed,
	}
	if f.slowRate > 0 {
		opt.Perturbation.SlowdownFactor = f.slowFac
		opt.Perturbation.SlowdownDuration = sim.Time(f.slowDur)
	}
	if f.bgCSV != "" {
		opt.Perturbation.BackgroundLoad, err = cliutil.ParseFloats(f.bgCSV)
		fatalIf(err)
	}
	if !f.quiet {
		opt.Progress = func(cell string) {
			fmt.Fprintf(os.Stderr, "  done %-55s (%6.1fs elapsed)\n", cell, time.Since(start).Seconds())
		}
	}
	rr, err := hdls.RunRobustness(opt)
	fatalIf(err)
	fmt.Print(rr.Table())
	if f.outDir != "" {
		fatalIf(os.MkdirAll(f.outDir, 0o755))
		name := filepath.Join(f.outDir, "robustness.csv")
		fatalIf(os.WriteFile(name, []byte(rr.CSV()), 0o644))
		fmt.Printf("wrote %s\n", name)
	}
	if f.jsonOut != "" {
		snap := benchSnapshot{
			Date:       time.Now().UTC().Format("2006-01-02"),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Scale:      f.scale,
			Robustness: []*hdls.RobustnessResult{rr},
			Tables:     map[string]float64{},
		}
		for _, row := range rr.Rows {
			snap.Tables[fmt.Sprintf("robust/%s/%s", rr.Scenario, row.Technique)] = row.ParallelTime
			snap.Cells++
			snap.VirtualSeconds += row.ParallelTime
		}
		snap.WallSeconds = time.Since(start).Seconds()
		if snap.WallSeconds > 0 {
			snap.CellsPerSec = float64(snap.Cells) / snap.WallSeconds
			snap.SimPerHostRatio = snap.VirtualSeconds / snap.WallSeconds
		}
		buf, err := json.MarshalIndent(&snap, "", "  ")
		fatalIf(err)
		fatalIf(os.WriteFile(f.jsonOut, append(buf, '\n'), 0o644))
		fmt.Printf("wrote %s\n", f.jsonOut)
	}
	fmt.Printf("robustness sweep complete in %.1fs\n", time.Since(start).Seconds())
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdlsweep:", err)
		os.Exit(1)
	}
}
