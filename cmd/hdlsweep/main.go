// Command hdlsweep regenerates the paper's evaluation: Figures 4–7 (both
// applications, all intra-node techniques, 2–16 nodes, both approaches).
// It prints the tables to stdout and optionally writes CSV files per
// figure, the inputs EXPERIMENTS.md is built from. Figure cells are
// independent simulations and run concurrently on the host's cores.
//
//	hdlsweep                    # all figures, quick scale (1/8)
//	hdlsweep -figure 5          # only Figure 5
//	hdlsweep -scale 1           # full-size workloads (minutes)
//	hdlsweep -extended          # fill the paper's n/a cells via the
//	                            # extended (libGOMP-style) OpenMP runtime
//	hdlsweep -json BENCH_x.json # also write a perf snapshot (see `make bench`)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/hdls"
)

// benchSnapshot is the schema of the -json perf snapshot: enough to track
// the simulator's host-side throughput across kernel changes (the BENCH_*
// trajectory) together with the virtual results it produced.
type benchSnapshot struct {
	Date        string  `json:"date"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Scale       int     `json:"scale"`
	Nodes       []int   `json:"nodes"`
	Figures     []int   `json:"figures"`
	Cells       int     `json:"cells"`
	WallSeconds float64 `json:"wall_seconds"`
	CellsPerSec float64 `json:"cells_per_second"`
	// VirtualSeconds sums simulated time over all cells: the ratio of
	// simulated to host time is the kernel's headline throughput metric.
	VirtualSeconds  float64            `json:"virtual_seconds"`
	SimPerHostRatio float64            `json:"sim_per_host_ratio"`
	Tables          map[string]float64 `json:"cell_seconds"`
}

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure to regenerate (4..7); 0 = all")
		scale    = flag.Int("scale", 8, "workload scale divisor (1 = full size)")
		nodesCSV = flag.String("nodes", "2,4,8,16", "comma-separated node counts")
		seed     = flag.Int64("seed", 1, "simulation seed")
		extended = flag.Bool("extended", false, "fill TSS/FAC2 intra cells for MPI+OpenMP")
		outDir   = flag.String("out", "", "directory for per-figure CSV files (optional)")
		quiet    = flag.Bool("q", false, "suppress per-cell progress")
		withEff  = flag.Bool("eff", false, "also print parallel-efficiency tables")
		jsonOut  = flag.String("json", "", "write a BENCH_*.json perf snapshot to this path")
		par      = flag.Int("p", 0, "max concurrent figure cells (0 = all cores)")
	)
	flag.Parse()

	nodes, err := parseNodes(*nodesCSV)
	fatalIf(err)

	figures := []int{4, 5, 6, 7}
	if *figure != 0 {
		figures = []int{*figure}
	}
	apps := []hdls.App{hdls.Mandelbrot, hdls.PSIA}

	start := time.Now()
	snap := benchSnapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      *scale,
		Nodes:      nodes,
		Figures:    figures,
		Tables:     map[string]float64{},
	}
	for _, fig := range figures {
		for _, app := range apps {
			opt := hdls.FigureOptions{
				Scale: *scale, Nodes: nodes, Seed: *seed, Extended: *extended,
				Parallelism: *par,
			}
			if !*quiet {
				opt.Progress = func(cell string) {
					fmt.Fprintf(os.Stderr, "  done %-55s (%6.1fs elapsed)\n", cell, time.Since(start).Seconds())
				}
			}
			fr, err := hdls.RunFigure(fig, app, opt)
			fatalIf(err)
			fmt.Println(fr.Table())
			if *withEff {
				fmt.Println(fr.EfficiencyTable(*scale, 16))
			}
			printRatios(fr)
			recordCells(&snap, fr)
			if *outDir != "" {
				fatalIf(os.MkdirAll(*outDir, 0o755))
				name := filepath.Join(*outDir, fmt.Sprintf("figure%d_%s.csv", fig, strings.ToLower(app.String())))
				fatalIf(os.WriteFile(name, []byte(fr.CSV()), 0o644))
				fmt.Printf("wrote %s\n\n", name)
			}
		}
	}
	wall := time.Since(start).Seconds()
	fmt.Printf("sweep complete in %.1fs\n", wall)
	if *jsonOut != "" {
		snap.WallSeconds = wall
		if wall > 0 {
			snap.CellsPerSec = float64(snap.Cells) / wall
			snap.SimPerHostRatio = snap.VirtualSeconds / wall
		}
		buf, err := json.MarshalIndent(&snap, "", "  ")
		fatalIf(err)
		fatalIf(os.WriteFile(*jsonOut, append(buf, '\n'), 0o644))
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// recordCells folds one figure's results into the perf snapshot.
func recordCells(snap *benchSnapshot, fr *hdls.FigureResult) {
	for ii, intra := range fr.Intras {
		for ni, n := range fr.Nodes {
			for _, ap := range fr.Approaches {
				v := fr.Times[ap][ii][ni]
				if v != v { // NaN: unsupported cell
					continue
				}
				key := fmt.Sprintf("fig%d/%s/%v+%v/%dn/%v", fr.Figure, fr.App, fr.Inter, intra, n, ap)
				snap.Tables[key] = v
				snap.Cells++
				snap.VirtualSeconds += v
			}
		}
	}
}

// printRatios summarizes each intra column as the MPI+OpenMP / MPI+MPI
// ratio (>1: proposed approach wins), the comparison the paper narrates.
func printRatios(fr *hdls.FigureResult) {
	var b strings.Builder
	fmt.Fprintf(&b, "  speedup of MPI+MPI over MPI+OpenMP (×):")
	for _, intra := range fr.Intras {
		fmt.Fprintf(&b, "  %v:", intra)
		any := false
		for _, n := range fr.Nodes {
			s := fr.Speedup(intra, n)
			if s != s { // NaN
				continue
			}
			fmt.Fprintf(&b, " %.2f", s)
			any = true
		}
		if !any {
			b.WriteString(" n/a")
		}
	}
	fmt.Println(b.String())
	fmt.Println()
}

func parseNodes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad node count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdlsweep:", err)
		os.Exit(1)
	}
}
