// Command hdlsd serves hierarchical DLS simulation sweeps over HTTP: the
// sweep-as-a-service daemon over the same hdls API the CLIs use. Cells run
// on a bounded worker pool drawing pooled simulation arenas, results are
// resolved through a tiered content-addressed store keyed by canonical
// config hash (deterministic sims make them perfectly cacheable), and
// sweeps stream per-cell NDJSON as cells complete.
//
// The store's tiers: an in-memory LRU, an optional checksummed disk tier
// (-cache-dir, capped by -cache-disk-max) that makes restarts warm, and an
// optional fleet peer-fill hook (-cache-peers) that pulls a missing cell
// from the ring peer that already computed it (GET /v1/cache/{hash})
// before simulating. Concurrent identical requests collapse onto a single
// engine execution; every tier replays byte-identical results. The
// graceful drain flushes pending disk-tier writes before exit.
//
//	hdlsd -addr :8080
//
//	curl -s localhost:8080/v1/techniques
//	curl -s -d '{"app":"Mandelbrot","nodes":4,"inter":"GSS","intra":"STATIC",
//	             "approach":"MPI+MPI"}' localhost:8080/v1/run
//	curl -sN -d '{"cells":[{"inter":"GSS","intra":"SS","approach":"MPI+MPI"},
//	              {"inter":"FAC2","intra":"SS","approach":"MPI+MPI"}]}' \
//	     'localhost:8080/v1/sweep?stream=1'
//
// With -role coordinator the daemon runs no simulations itself: it shards
// each sweep across the -peers worker daemons by consistent-hash routing
// on the canonical config hash, retries failures with backoff against ring
// successors, and merges the worker streams back into a response that is
// byte-identical to a single daemon's (DESIGN.md §10):
//
//	hdlsd -addr :9100 &
//	hdlsd -addr :9101 &
//	hdlsd -role coordinator -addr :8080 \
//	      -peers http://127.0.0.1:9100,http://127.0.0.1:9101
//
// Probes are split: /healthz is liveness (200 while the process serves,
// draining included); /readyz is readiness and flips to 503 + Retry-After
// on drain, queue saturation, or — for a coordinator — when every worker's
// circuit breaker is open. SIGTERM/SIGINT starts a graceful drain: new
// jobs are rejected, in-flight jobs finish (bounded by -drain-timeout),
// then the process exits. /metrics exposes throughput, cache, arena-pool
// and fleet counters in Prometheus text format.
//
// -chaos arms deterministic fault injection (delay, error, drop, truncate
// — see internal/serve) on a worker's cell endpoints; the fleet smoke and
// chaos tests use it, production never should.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	var (
		role     = flag.String("role", "serve", "daemon role: serve (run cells) or coordinator (shard sweeps across -peers)")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
		cacheN   = flag.Int("cache", 4096, "result-store memory-tier entries (LRU)")
		cacheDir = flag.String("cache-dir", "", "result-store disk tier directory (empty disables; restarts are warm)")
		cacheMax = flag.Int64("cache-disk-max", 256<<20, "disk-tier size cap in bytes (LRU-evicted)")
		cachePrs = flag.String("cache-peers", "", "comma-separated peer base URLs to fill misses from (GET /v1/cache/{hash})")
		cacheHop = flag.Int("cache-peer-probes", 2, "ring successors probed per miss before simulating")
		cachePT  = flag.Duration("cache-peer-timeout", 500*time.Millisecond, "per-probe peer-fill deadline")
		maxCells = flag.Int("max-cells", 4096, "maximum cells per sweep submission")
		queueCap = flag.Int("queue", 1<<16, "queued-cell capacity across all jobs")
		maxNodes = flag.Int("max-nodes", 4096, "per-cell simulated node limit")
		maxWPN   = flag.Int("max-workers-per-node", 4096, "per-cell workers-per-node limit")
		maxWN    = flag.Int("max-workload-n", 1<<22, "per-cell workload iteration limit")
		jobTTL   = flag.Duration("job-ttl", 15*time.Minute, "completed-job retention time")
		jobKeep  = flag.Int("job-keep", 256, "completed-job retention count")
		jrnlDir  = flag.String("journal-dir", "", "job-journal directory: async sweeps survive crashes and are replayed at startup (empty disables)")
		maxJobs  = flag.Int("max-active-jobs", 1024, "admission bound on incomplete jobs; excess submissions get 429 + Retry-After")
		maxCJobs = flag.Int("max-client-jobs", 64, "admission bound on one client's incomplete jobs (X-Client header or remote host)")
		chaos    = flag.String("chaos", "", "arm deterministic fault injection (spec, or 'header' for X-Chaos only)")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM")

		peers      = flag.String("peers", "", "coordinator: comma-separated worker base URLs")
		attempts   = flag.Int("max-attempts", 4, "coordinator: total tries per cell")
		backoff    = flag.Duration("backoff", 25*time.Millisecond, "coordinator: base retry backoff")
		backoffMax = flag.Duration("backoff-max", time.Second, "coordinator: retry backoff cap")
		cellT      = flag.Duration("cell-timeout", 60*time.Second, "coordinator: per-cell result deadline")
		brkFails   = flag.Int("breaker-failures", 3, "coordinator: consecutive failures that trip a worker's breaker")
		brkCool    = flag.Duration("breaker-cooldown", 2*time.Second, "coordinator: breaker cooldown before a half-open trial")
		probeEvery = flag.Duration("probe-interval", time.Second, "coordinator: worker health-probe period (0 disables)")
		dlMargin   = flag.Duration("deadline-margin", 250*time.Millisecond, "coordinator: network margin subtracted from forwarded X-Deadline")
	)
	flag.Parse()

	limits := serve.Options{
		Workers:           *workers,
		CacheEntries:      *cacheN,
		CacheDir:          *cacheDir,
		CacheDiskMax:      *cacheMax,
		MaxCells:          *maxCells,
		QueueCapacity:     *queueCap,
		MaxNodes:          *maxNodes,
		MaxWorkersPerNode: *maxWPN,
		MaxWorkloadN:      *maxWN,
		JobTTL:            *jobTTL,
		RetainedJobs:      *jobKeep,
		JournalDir:        *jrnlDir,
		MaxActiveJobs:     *maxJobs,
		MaxJobsPerClient:  *maxCJobs,
		Chaos:             *chaos,
	}

	var handler http.Handler
	var drain func(context.Context) error
	switch *role {
	case "serve":
		if *cachePrs != "" {
			limits.PeerFetch = fleet.PeerFill(fleet.PeerFillOptions{
				Peers:   strings.Split(*cachePrs, ","),
				Probes:  *cacheHop,
				Timeout: *cachePT,
			})
		}
		srv, err := serve.NewWithError(limits)
		if err != nil {
			log.Fatalf("hdlsd: %v", err)
		}
		handler, drain = srv.Handler(), srv.Drain
	case "coordinator":
		if *peers == "" {
			log.Fatal("hdlsd: -role coordinator requires -peers")
		}
		coord, err := fleet.New(fleet.Options{
			Workers:         strings.Split(*peers, ","),
			MaxAttempts:     *attempts,
			BackoffBase:     *backoff,
			BackoffMax:      *backoffMax,
			CellTimeout:     *cellT,
			BreakerFailures: *brkFails,
			BreakerCooldown: *brkCool,
			ProbeInterval:   *probeEvery,
			MaxCells:        *maxCells,
			DeadlineMargin:  *dlMargin,
			Limits:          limits,
		})
		if err != nil {
			log.Fatalf("hdlsd: %v", err)
		}
		defer coord.Close()
		handler = coord.Handler()
		drain = func(context.Context) error { coord.Close(); return nil }
	default:
		log.Fatalf("hdlsd: unknown -role %q (serve, coordinator)", *role)
	}

	// Harden the listener against stuck or malicious peers: a client that
	// never finishes its headers or parks an idle keep-alive connection
	// must not hold daemon resources forever. No WriteTimeout: sweep
	// streams are legitimately long-lived and cancel via request context.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("hdlsd listening on %s (role %s)", *addr, *role)

	select {
	case err := <-errCh:
		log.Fatalf("hdlsd: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("hdlsd: draining (timeout %s)", *drainT)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	// Drain first so /readyz flips to 503 and new submissions are refused
	// while existing streams keep flowing; Shutdown then waits for those
	// streaming responses to finish.
	if err := drain(drainCtx); err != nil {
		log.Printf("hdlsd: drain: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hdlsd: shutdown: %v", err)
	}
	<-errCh // ListenAndServe returns ErrServerClosed after Shutdown
	log.Printf("hdlsd: drained, exiting")
	os.Exit(0)
}
