// Command hdlsd serves hierarchical DLS simulation sweeps over HTTP: the
// sweep-as-a-service daemon over the same hdls API the CLIs use. Cells run
// on a bounded worker pool drawing pooled simulation arenas, results are
// cached by canonical config hash (deterministic sims make them perfectly
// cacheable), and sweeps stream per-cell NDJSON as cells complete.
//
//	hdlsd -addr :8080
//
//	curl -s localhost:8080/v1/techniques
//	curl -s -d '{"app":"Mandelbrot","nodes":4,"inter":"GSS","intra":"STATIC",
//	             "approach":"MPI+MPI"}' localhost:8080/v1/run
//	curl -sN -d '{"cells":[{"inter":"GSS","intra":"SS","approach":"MPI+MPI"},
//	              {"inter":"FAC2","intra":"SS","approach":"MPI+MPI"}]}' \
//	     'localhost:8080/v1/sweep?stream=1'
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503, new jobs
// are rejected, in-flight jobs finish (bounded by -drain-timeout), then
// the process exits. /metrics exposes throughput, cache and arena-pool
// counters in Prometheus text format.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
		cacheN   = flag.Int("cache", 4096, "result-cache entries (LRU)")
		maxCells = flag.Int("max-cells", 4096, "maximum cells per sweep submission")
		queueCap = flag.Int("queue", 1<<16, "queued-cell capacity across all jobs")
		maxNodes = flag.Int("max-nodes", 4096, "per-cell simulated node limit")
		maxWPN   = flag.Int("max-workers-per-node", 4096, "per-cell workers-per-node limit")
		maxWN    = flag.Int("max-workload-n", 1<<22, "per-cell workload iteration limit")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM")
	)
	flag.Parse()

	srv := serve.New(serve.Options{
		Workers:           *workers,
		CacheEntries:      *cacheN,
		MaxCells:          *maxCells,
		QueueCapacity:     *queueCap,
		MaxNodes:          *maxNodes,
		MaxWorkersPerNode: *maxWPN,
		MaxWorkloadN:      *maxWN,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("hdlsd listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatalf("hdlsd: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("hdlsd: draining (timeout %s)", *drainT)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	// Drain first so /healthz flips to 503 and new submissions are refused
	// while existing streams keep flowing; Shutdown then waits for those
	// streaming responses to finish.
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("hdlsd: drain: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hdlsd: shutdown: %v", err)
	}
	<-errCh // ListenAndServe returns ErrServerClosed after Shutdown
	log.Printf("hdlsd: drained, exiting")
	os.Exit(0)
}
