// Command doclint enforces the repository's documentation bar on its
// public packages: every exported identifier — package, type, function,
// method, const/var, struct field and interface method — must carry a doc
// comment. CI runs it over the public surface:
//
//	doclint ./dls ./parallel ./hdls
//
// It exits non-zero listing each undocumented identifier as
// file:line: name. A const/var block's declaration comment covers all its
// specs; struct fields and interface methods accept trailing line comments.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doclint <package-dir>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var problems []string
	for _, dir := range flag.Args() {
		p, err := lintDir(strings.TrimPrefix(dir, "./"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", len(problems))
		os.Exit(1)
	}
}

// lintDir parses one package directory (tests excluded) and returns its
// documentation violations.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					lintFunc(d, report)
				case *ast.GenDecl:
					lintGen(d, report)
				}
			}
		}
	}
	return problems, nil
}

// lintFunc checks exported functions and methods on exported receivers.
func lintFunc(d *ast.FuncDecl, report func(token.Pos, string)) {
	if !d.Name.IsExported() {
		return
	}
	kind := "func"
	if d.Recv != nil {
		recv := receiverName(d.Recv)
		if recv != "" && !ast.IsExported(recv) {
			return // method on an unexported type: not public surface
		}
		kind = "method (" + recv + ")"
	}
	if d.Doc == nil {
		report(d.Pos(), kind+" "+d.Name.Name)
	}
}

// receiverName extracts the receiver's base type name.
func receiverName(fl *ast.FieldList) string {
	if len(fl.List) == 0 {
		return ""
	}
	t := fl.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// lintGen checks type, const and var declarations. A doc comment on the
// grouped declaration covers its specs; otherwise each exported spec needs
// its own doc or line comment.
func lintGen(d *ast.GenDecl, report func(token.Pos, string)) {
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if !sp.Name.IsExported() {
				continue
			}
			if d.Doc == nil && sp.Doc == nil {
				report(sp.Pos(), "type "+sp.Name.Name)
			}
			lintTypeBody(sp.Name.Name, sp.Type, report)
		case *ast.ValueSpec:
			for _, name := range sp.Names {
				if !name.IsExported() {
					continue
				}
				if d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					report(name.Pos(), "const/var "+name.Name)
				}
			}
		}
	}
}

// lintTypeBody checks exported struct fields and interface methods.
func lintTypeBody(typeName string, expr ast.Expr, report func(token.Pos, string)) {
	switch t := expr.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					report(name.Pos(), "field "+typeName+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					report(name.Pos(), "interface method "+typeName+"."+name.Name)
				}
			}
		}
	}
}
