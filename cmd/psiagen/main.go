// Command psiagen runs the real application kernels — not the simulation —
// in parallel on the host using the dls/parallel self-scheduling executor:
// it generates spin images (PSIA) from a synthetic 3D object and renders
// the Mandelbrot set, writing PGM images. It demonstrates that the DLS
// library schedules real Go loops, and reports the per-worker balance.
//
//	psiagen -points 50000 -images 4 -out /tmp/psia
//	psiagen -mandel -width 1024 -height 768 -out /tmp/set
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/dls"
	"repro/internal/mandelbrot"
	"repro/internal/spinimage"
	"repro/parallel"
)

func main() {
	var (
		doMandel = flag.Bool("mandel", false, "render the Mandelbrot set instead of spin images")
		points   = flag.Int("points", 20000, "points in the synthetic 3D object")
		images   = flag.Int("images", 4, "spin images to write as PGM")
		width    = flag.Int("width", 640, "Mandelbrot image width")
		height   = flag.Int("height", 480, "Mandelbrot image height")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		techS    = flag.String("dls", "FAC2", "self-scheduling technique for the real loop")
		out      = flag.String("out", "out", "output file prefix")
	)
	flag.Parse()

	tech, err := dls.Parse(*techS)
	fatalIf(err)
	opt := parallel.Options{Workers: *workers, Technique: tech}

	if *doMandel {
		runMandel(*width, *height, *out, opt)
		return
	}
	runPSIA(*points, *images, *out, opt)
}

func runMandel(w, h int, out string, opt parallel.Options) {
	p := mandelbrot.Default(w, h)
	counts := make([]int, p.N())
	t0 := time.Now()
	st, err := parallel.For(p.N(), func(i int) {
		counts[i] = p.Escape(i)
	}, opt)
	fatalIf(err)
	fmt.Printf("mandelbrot %dx%d: %d chunks on %d workers in %v (imbalance %.3f)\n",
		w, h, st.Chunks, st.Workers, time.Since(t0), st.LoadImbalance())

	name := out + "_mandelbrot.pgm"
	f, err := os.Create(name)
	fatalIf(err)
	fatalIf(mandelbrot.WritePGM(f, w, h, p.Render(counts)))
	fatalIf(f.Close())
	fmt.Printf("wrote %s\n", name)
}

func runPSIA(points, images int, out string, opt parallel.Options) {
	cloud := spinimage.Torus(points, 2.0, 0.8, 0.02, 42)
	params := spinimage.DefaultParams(32, 0.03)
	gen, err := spinimage.NewGenerator(cloud, params)
	fatalIf(err)

	// The PSIA loop: one spin image per oriented point.
	results := make([]spinimage.Image, cloud.N())
	t0 := time.Now()
	st, err := parallel.For(cloud.N(), func(i int) {
		results[i] = gen.Generate(i)
	}, opt)
	fatalIf(err)
	fmt.Printf("psia: %d spin images, %d chunks on %d workers in %v (imbalance %.3f)\n",
		cloud.N(), st.Chunks, st.Workers, time.Since(t0), st.LoadImbalance())

	for k := 0; k < images && k < len(results); k++ {
		idx := k * len(results) / images
		name := fmt.Sprintf("%s_spin_%05d.pgm", out, idx)
		f, err := os.Create(name)
		fatalIf(err)
		fatalIf(results[idx].WritePGM(f))
		fatalIf(f.Close())
		fmt.Printf("wrote %s (mass %.1f)\n", name, results[idx].Sum())
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "psiagen:", err)
		os.Exit(1)
	}
}
