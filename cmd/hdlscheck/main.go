// Command hdlscheck runs the machine-class perf gates (internal/checks,
// DESIGN.md §14): it loads the declarative checks/ tree, calibrates the
// host against the requested machine class, executes every case through a
// live hdlsd — a fresh daemon subprocess per case, so the service gates
// its own serving path — appends one trend row per case to
// checks/trend/<class>.ndjson, and exits 1 if any named check fails:
//
//	hdlscheck -hdlsd bin/hdlsd -class quick
//	check quick/fig4-grid: PASS
//	check quick/serve-stream: FAIL: p99_stream_ms 312 > goal 250ms
//
// Without -hdlsd the cases run against an in-process daemon — the same
// engine, but a daemon crash cannot be distinguished from a harness
// crash, so CI uses the subprocess mode. -seed-bench converts committed
// BENCH_*.json snapshots into trend rows so a fresh history starts from
// the repo's existing measurements instead of nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/checks"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdlscheck: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		dir      = flag.String("dir", "checks", "checks tree root")
		class    = flag.String("class", "quick", "machine class to run")
		binary   = flag.String("hdlsd", "", "hdlsd binary; each case gets a fresh subprocess daemon (empty = in-process engine)")
		workers  = flag.Int("workers", 0, "daemon worker pool per case (0 = GOMAXPROCS)")
		trendDir = flag.String("trend", "", "trend history directory (default <dir>/trend; \"none\" disables the append)")
		pidFile  = flag.String("daemon-pidfile", "", "write each case's live daemon PID here (subprocess mode; for fault-injection harnesses)")
		list     = flag.Bool("list", false, "list classes and cases, run nothing")
		seed     = flag.String("seed-bench", "", "append a trend row converted from this BENCH_*.json snapshot, run nothing")
		seedAs   = flag.String("seed-check", "bench/figure-grid", "check name for -seed-bench rows")
		verbose  = flag.Bool("v", false, "stream daemon logs to stderr")
	)
	flag.Parse()

	tree, err := checks.Load(*dir)
	if err != nil {
		fatalf("%v", err)
	}
	trend := *trendDir
	if trend == "" {
		trend = filepath.Join(*dir, "trend")
	}

	if *list {
		for _, cl := range tree.Classes {
			fmt.Printf("%s (calib ref %.0f Mops/s, band %.0fx)\n",
				cl.Name, cl.Machine.CalibRefMops, cl.Machine.CalibBand)
			for _, c := range cl.Cases {
				fmt.Printf("  %-24s %-6s %s\n", c.Name, c.Spec.Target, c.Spec.Description)
			}
		}
		return
	}

	if *seed != "" {
		row, err := checks.RowFromBenchSnapshot(*seed, *seedAs)
		if err != nil {
			fatalf("%v", err)
		}
		path := filepath.Join(trend, *class+".ndjson")
		if err := checks.AppendRows(path, []checks.Row{row}); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("hdlscheck: seeded %s from %s\n", path, *seed)
		return
	}

	cl, err := tree.Class(*class)
	if err != nil {
		fatalf("%v", err)
	}

	var exec checks.Executor
	if *binary != "" {
		de := &checks.DaemonExecutor{Binary: *binary, Workers: *workers, PidFile: *pidFile}
		if *verbose {
			de.Stderr = os.Stderr
		}
		exec = de
	} else {
		if *pidFile != "" {
			fatalf("-daemon-pidfile needs -hdlsd (no subprocess to report)")
		}
		exec = &checks.InProcessExecutor{Workers: *workers}
	}

	host := checks.Calibrate()
	fmt.Printf("hdlscheck: class %s on host: %d cores, calib %.0f Mops/s, %s\n",
		cl.Name, host.Cores, host.CalibMops, host.GoVersion)

	runner := &checks.Runner{Exec: exec, Host: host, Log: os.Stdout}
	results := runner.RunClass(cl)

	if trend != "none" {
		rows := checks.RowsFromResults(host, time.Now(), results)
		path := filepath.Join(trend, cl.Name+".ndjson")
		if err := checks.AppendRows(path, rows); err != nil {
			fatalf("%v", err)
		}
	}

	counts := map[string]int{}
	var failed []checks.Result
	for _, res := range results {
		counts[res.Status]++
		if res.Failed() {
			failed = append(failed, res)
		}
	}
	fmt.Printf("hdlscheck: %d pass, %d fail, %d skip\n",
		counts[checks.StatusPass], counts[checks.StatusFail], counts[checks.StatusSkip])
	if len(failed) > 0 {
		sort.Slice(failed, func(i, j int) bool { return failed[i].Check < failed[j].Check })
		for _, res := range failed {
			fmt.Fprintln(os.Stderr, res.Summary())
		}
		os.Exit(1)
	}
}
