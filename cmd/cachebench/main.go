// Command cachebench measures what the tiered content-addressed result
// store (internal/castore) buys the sweep service: it drives the full
// figure grid (figures 4–7, both applications — the same 256 cells `make
// bench` times through hdlsweep) through an in-process hdlsd three times
// and reports cells/second per pass:
//
//	cold  — fresh store, every cell simulated
//	warm  — same daemon, every cell a memory-tier hit
//	disk  — daemon drained and restarted on the same -dir, every cell a
//	        disk-tier hit (the warm-restart story)
//
// All three passes must stream byte-identical NDJSON — the store's core
// invariant (DESIGN.md §12) — and the warm pass must beat the cold pass
// by at least -min-speedup (default 5×), or the process exits 1. With
// -json FILE the three rates are merged into an existing BENCH snapshot
// under a "serve_cache" key, preserving every other field.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/checks"
	"repro/internal/cliutil"
	"repro/internal/serve"
)

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachebench:", err)
		os.Exit(1)
	}
}

// sweep streams one full sweep and returns the NDJSON body and wall time.
func sweep(baseURL string, body []byte) ([]byte, time.Duration, error) {
	start := time.Now()
	resp, err := http.Post(baseURL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("sweep: status %d: %s", resp.StatusCode, out)
	}
	return out, time.Since(start), nil
}

// passResult is one timed pass, as merged into the BENCH snapshot.
type passResult struct {
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_second"`
}

func timed(cells int, d time.Duration) passResult {
	s := d.Seconds()
	return passResult{Seconds: s, CellsPerSec: float64(cells) / s}
}

func main() {
	var (
		scale    = flag.Int("scale", 64, "workload scale divisor (larger = cheaper cells)")
		nodesCSV = flag.String("nodes", "2,4,8,16", "comma-separated node counts")
		seed     = flag.Int64("seed", 1, "engine seed for every cell")
		workers  = flag.Int("workers", 0, "daemon worker pool (0 = GOMAXPROCS)")
		dir      = flag.String("dir", "", "disk-tier directory (empty = fresh temp dir)")
		jsonOut  = flag.String("json", "", "merge results into this BENCH snapshot under \"serve_cache\"")
		minSpeed = flag.Float64("min-speedup", 5.0, "fail unless warm/cold cells-per-second ratio reaches this")
		quiet    = flag.Bool("q", false, "suppress the per-pass table")
	)
	flag.Parse()

	nodes, err := cliutil.ParseNodeCounts(*nodesCSV)
	fatalIf(err)
	cacheDir := *dir
	if cacheDir == "" {
		cacheDir, err = os.MkdirTemp("", "cachebench-*")
		fatalIf(err)
		defer os.RemoveAll(cacheDir)
	}

	// The grid enumeration is shared with the checks runner's sweep target
	// (internal/checks), so `make check` and cachebench gate the same cells.
	cells, err := checks.GridCells([]int{4, 5, 6, 7}, nodes, *scale, *seed)
	fatalIf(err)
	req, err := json.Marshal(map[string]any{"cells": cells})
	fatalIf(err)

	opts := serve.Options{Workers: *workers, CacheDir: cacheDir, MaxCells: len(cells)}
	s1, err := serve.NewWithError(opts)
	fatalIf(err)
	ts1 := httptest.NewServer(s1.Handler())

	coldBody, coldWall, err := sweep(ts1.URL, req)
	fatalIf(err)
	warmBody, warmWall, err := sweep(ts1.URL, req)
	fatalIf(err)

	// Drain flushes the pending disk writes; the restarted daemon must
	// serve the whole grid from the disk tier without simulating.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fatalIf(s1.Drain(drainCtx))
	ts1.Close()
	s2, err := serve.NewWithError(opts)
	fatalIf(err)
	ts2 := httptest.NewServer(s2.Handler())
	diskBody, diskWall, err := sweep(ts2.URL, req)
	fatalIf(err)
	st := s2.Store().Stats()
	fatalIf(s2.Drain(drainCtx))
	ts2.Close()

	if !bytes.Equal(coldBody, warmBody) {
		fatalIf(fmt.Errorf("warm pass bytes differ from cold pass"))
	}
	if !bytes.Equal(coldBody, diskBody) {
		fatalIf(fmt.Errorf("disk-warm pass bytes differ from cold pass"))
	}
	if st.DiskHits != int64(len(cells)) {
		fatalIf(fmt.Errorf("restarted daemon served %d disk hits, want %d", st.DiskHits, len(cells)))
	}

	cold := timed(len(cells), coldWall)
	warm := timed(len(cells), warmWall)
	disk := timed(len(cells), diskWall)
	warmX := warm.CellsPerSec / cold.CellsPerSec
	diskX := disk.CellsPerSec / cold.CellsPerSec

	if !*quiet {
		fmt.Printf("cachebench: %d cells, scale %d, dir %s\n", len(cells), *scale, cacheDir)
		fmt.Printf("  %-9s %10s %14s %9s\n", "pass", "seconds", "cells/s", "speedup")
		fmt.Printf("  %-9s %10.3f %14.1f %9s\n", "cold", cold.Seconds, cold.CellsPerSec, "1.0x")
		fmt.Printf("  %-9s %10.3f %14.1f %8.1fx\n", "warm", warm.Seconds, warm.CellsPerSec, warmX)
		fmt.Printf("  %-9s %10.3f %14.1f %8.1fx\n", "disk-warm", disk.Seconds, disk.CellsPerSec, diskX)
	}

	if *jsonOut != "" {
		fatalIf(mergeSnapshot(*jsonOut, map[string]any{
			"cells":        len(cells),
			"cold":         cold,
			"warm":         warm,
			"disk_warm":    disk,
			"warm_speedup": warmX,
			"disk_speedup": diskX,
		}))
	}

	if warmX < *minSpeed {
		fatalIf(fmt.Errorf("warm pass only %.1fx cold (want >= %.1fx)", warmX, *minSpeed))
	}
}

// mergeSnapshot sets snapshot["serve_cache"] = result in an existing BENCH
// json file (or creates the file with just that key), leaving every other
// field byte-compatible with what hdlsweep wrote.
func mergeSnapshot(path string, result map[string]any) error {
	snapshot := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &snapshot); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	snapshot["serve_cache"] = result
	out, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
