// Golden equivalence tests for the simulation kernel hot path. The values
// below were captured from the original (pre-optimization) kernel:
// pointer-heap event queue, per-attempt lock polling, sequential sweeps.
// The optimized kernel must reproduce every bit of them — virtual
// timestamps, chunk counts, and the lock-polling accounting — because the
// figures the repo regenerates are derived from exactly these quantities.
package repro_test

import (
	"flag"
	"fmt"
	"sort"
	"testing"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

var printGolden = flag.Bool("print-golden", false, "print current kernel golden values instead of asserting")

// goldenCase is one frozen experiment outcome.
type goldenCase struct {
	name string
	cfg  func() core.Config

	parallelTime string // %.17g of Result.ParallelTime
	globalChunks int
	localChunks  int
	lockAtt      int64
	lockAcq      int64
	barrierWait  string // %.17g of Result.BarrierWait
	// finishSum is the sum over WorkerFinish accumulated in ascending sorted
	// order. Sorting makes the golden invariant under the one freedom the
	// coalesced lock implementation has: when two bit-identical nodes race
	// for a grant at the same instant, the literal protocol broke the tie by
	// internal event-counter order, so the *assignment* of the (identical)
	// per-worker trajectories to node IDs may swap while every trajectory,
	// timestamp and count is preserved. See DESIGN.md §3.
	finishSum string
}

func goldenCases() []goldenCase {
	mandel := workload.MandelbrotProfile(64)
	uniform := workload.Uniform(4096, 15e-6, 40e-6, 3)
	return []goldenCase{
		{
			name: "mpimpi-gss-ss-1node", // the paper's SS lock-storm pathology
			cfg: func() core.Config {
				return core.Config{
					Cluster: cluster.MiniHPC(1), WorkersPerNode: 16,
					Inter: dls.GSS, Intra: dls.SS,
					Workload: uniform, Approach: core.MPIMPI, Seed: 1,
				}
			},
		},
		{
			name: "mpimpi-gss-static-2node",
			cfg: func() core.Config {
				return core.Config{
					Cluster: cluster.MiniHPC(2), WorkersPerNode: 16,
					Inter: dls.GSS, Intra: dls.STATIC,
					Workload: mandel, Approach: core.MPIMPI, Seed: 1,
				}
			},
		},
		{
			name: "mpimpi-fac2-gss-4node",
			cfg: func() core.Config {
				return core.Config{
					Cluster: cluster.MiniHPC(4), WorkersPerNode: 16,
					Inter: dls.FAC2, Intra: dls.GSS,
					Workload: mandel, Approach: core.MPIMPI, Seed: 1,
				}
			},
		},
		{
			name: "mpimpi-tss-fac2-noise",
			cfg: func() core.Config {
				return core.Config{
					Cluster: withNoise(cluster.MiniHPC(2), 0.2), WorkersPerNode: 16,
					Inter: dls.TSS, Intra: dls.FAC2,
					Workload: workload.PSIAProfile(64), Approach: core.MPIMPI, Seed: 7,
				}
			},
		},
		{
			name: "mpiopenmp-gss-static-2node",
			cfg: func() core.Config {
				return core.Config{
					Cluster: cluster.MiniHPC(2), WorkersPerNode: 16,
					Inter: dls.GSS, Intra: dls.STATIC,
					Workload: mandel, Approach: core.MPIOpenMP, Seed: 1,
				}
			},
		},
		{
			name: "nowait-gss-ss-2node",
			cfg: func() core.Config {
				return core.Config{
					Cluster: cluster.MiniHPC(2), WorkersPerNode: 16,
					Inter: dls.GSS, Intra: dls.SS,
					Workload: mandel, Approach: core.MPIOpenMPNoWait, Seed: 1,
				}
			},
		},
		{
			name: "mpimpi-hetero-knl-ss",
			cfg: func() core.Config {
				return core.Config{
					Cluster: cluster.MiniHPCKNL(2), WorkersPerNode: 64,
					Inter: dls.GSS, Intra: dls.SS,
					Workload: workload.Uniform(2048, 30e-6, 80e-6, 5),
					Approach: core.MPIMPI, Seed: 1,
				}
			},
		},
	}
}

func withNoise(c cluster.Config, cv float64) cluster.Config {
	c.NoiseCV = cv
	return c
}

func observe(t *testing.T, c goldenCase) goldenCase {
	t.Helper()
	res, err := core.Run(c.cfg())
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	fin := append([]sim.Time(nil), res.WorkerFinish...)
	sort.Slice(fin, func(i, j int) bool { return fin[i] < fin[j] })
	var sum sim.Time
	for _, f := range fin {
		sum += f
	}
	c.parallelTime = fmt.Sprintf("%.17g", float64(res.ParallelTime))
	c.globalChunks = res.GlobalChunks
	c.localChunks = res.LocalChunks
	c.lockAtt = res.LockAttempts
	c.lockAcq = res.LockAcquisitions
	c.barrierWait = fmt.Sprintf("%.17g", float64(res.BarrierWait))
	c.finishSum = fmt.Sprintf("%.17g", float64(sum))
	return c
}

func TestKernelGoldenEquivalence(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := observe(t, c)
			if *printGolden {
				fmt.Printf("GOLDEN\t%s\t%s\t%d\t%d\t%d\t%d\t%s\t%s\n",
					got.name, got.parallelTime, got.globalChunks, got.localChunks,
					got.lockAtt, got.lockAcq, got.barrierWait, got.finishSum)
				return
			}
			want, ok := goldenWant[c.name]
			if !ok {
				t.Fatalf("no golden entry for %s (run with -print-golden)", c.name)
			}
			got.cfg = nil
			if got.name != want.name || got.parallelTime != want.parallelTime ||
				got.globalChunks != want.globalChunks || got.localChunks != want.localChunks ||
				got.lockAtt != want.lockAtt || got.lockAcq != want.lockAcq ||
				got.barrierWait != want.barrierWait || got.finishSum != want.finishSum {
				t.Fatalf("kernel output diverged from frozen golden:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}
