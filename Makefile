GO ?= go
DATE := $(shell date -u +%Y-%m-%d)

.PHONY: test bench sweep vet fmt doclint serve smoke fleet-smoke castore-smoke soak check checks-smoke

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# doclint fails when any exported identifier in the public packages lacks
# a doc comment (the bar CI's doc-lint step enforces).
doclint:
	$(GO) run ./cmd/doclint ./dls ./parallel ./hdls

# serve runs the sweep-as-a-service daemon on :8080 (see cmd/hdlsd and
# DESIGN.md §9); smoke drives the end-to-end HTTP acceptance scenario
# against a freshly built daemon and tears it down.
serve:
	$(GO) run ./cmd/hdlsd -addr :8080

smoke:
	scripts/hdlsd_smoke.sh

# fleet-smoke drives the fault-tolerance acceptance scenario (DESIGN.md
# §10): a coordinator sharding a 64-cell sweep over three workers with one
# worker SIGKILLed mid-stream, asserting the merged NDJSON is
# byte-identical to a single daemon's output.
fleet-smoke:
	scripts/fleet_smoke.sh

# castore-smoke drives the result-store acceptance scenario (DESIGN.md
# §12): a daemon with a disk tier is SIGTERMed and restarted on the same
# directory (warm replay must be byte-identical, served as hit-disk), then
# a two-worker fleet exercises peer-fill (hit-peer without recompute).
castore-smoke:
	scripts/castore_smoke.sh

# soak drives the durability acceptance scenario (DESIGN.md §13): a
# 3-worker journaled fleet under concurrent loadgen traffic with a worker
# and the coordinator SIGKILLed and restarted mid-run — zero lost jobs,
# byte-identical post-crash merge, 429 + Retry-After under overload,
# in-band deadline expiry.
soak:
	scripts/fleet_soak.sh

# bench writes the BENCH_<date>$(SUFFIX).json perf snapshot: the figure
# sweep at the benchmark scale, the result-store cold/warm/disk-warm rows
# (cmd/cachebench merges them under "serve_cache"), plus the kernel
# microbenchmarks to stderr.
# The node axis spans 2..16 (the paper's full system-size sweep): the 8n/16n
# cells are the large-P rows — 128/256 ranks per cell — and make up most of
# the sweep's wall time, so bench-check's 25% gate catches large-P
# regressions through the aggregate cells/second. Commit the JSON to extend
# the perf trajectory; set SUFFIX (e.g. SUFFIX=b) when a snapshot for the
# date already exists, so the trajectory keeps both points.
SUFFIX ?=
bench:
	$(GO) run ./cmd/hdlsweep -scale 64 -nodes 2,4,8,16 -q -json BENCH_$(DATE)$(SUFFIX).json
	$(GO) run ./cmd/cachebench -scale 64 -nodes 2,4,8,16 -json BENCH_$(DATE)$(SUFFIX).json
	$(GO) test ./internal/sim -bench Kernel -benchmem -run '^$$' | tee -a /dev/stderr >/dev/null

# bench-stress times the opt-in 64-node cells (1024 ranks each) — the
# large-P extreme kept outside the committed snapshot trajectory because a
# single cell takes seconds. Useful when touching the collectives, the
# arena pool, or the event queue's spill-to-heap path.
bench-stress:
	$(GO) run ./cmd/hdlsweep -figure 5 -scale 64 -nodes 64 -q
	$(GO) run ./cmd/hdlsim -app mandelbrot -inter GSS -intra SS -nodes 64 -scale 64

# check runs the machine-class perf gates (DESIGN.md §14): every case of
# the selected class executed through a fresh live hdlsd subprocess, one
# trend row appended per case to checks/trend/<class>.ndjson, and a named
# verdict per check — CI fails with
#   check quick/fig4-grid: FAIL: cells_per_second 61.2 < goal 100
# instead of a raw regression percentage. CLASS=nightly runs the full
# matrix the nightly workflow uses.
CLASS ?= quick
check:
	$(GO) build -o bin/hdlsd ./cmd/hdlsd
	$(GO) build -o bin/hdlscheck ./cmd/hdlscheck
	bin/hdlscheck -hdlsd bin/hdlsd -class $(CLASS)

# checks-smoke asserts the gates fail the right way: a deliberately
# lowered goal and a SIGKILLed check daemon must both fail the named
# check (exit 1), never crash the harness.
checks-smoke:
	scripts/checks_smoke.sh

# bench-check is the in-process form of `make check`: the quick class with
# goals enforced, named per failing check (wall-clock sensitive: run on a
# quiet machine; CI's perf job does).
bench-check:
	BENCH_TREND=1 $(GO) test -run TestBenchTrend -v .

# sweep regenerates the paper evaluation at the quick default scale (1/8
# workloads); set SCALE=1 for the full-size numbers (minutes).
SCALE ?= 8
sweep:
	$(GO) run ./cmd/hdlsweep -scale $(SCALE) -out results
