GO ?= go
DATE := $(shell date -u +%Y-%m-%d)

.PHONY: test bench sweep vet fmt

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# bench writes the BENCH_<date>$(SUFFIX).json perf snapshot: the figure
# sweep at the benchmark scale plus the kernel microbenchmarks to stderr.
# Commit the JSON to extend the perf trajectory; set SUFFIX (e.g. SUFFIX=b)
# when a snapshot for the date already exists, so the trajectory keeps both
# points.
SUFFIX ?=
bench:
	$(GO) run ./cmd/hdlsweep -scale 64 -nodes 2,4 -q -json BENCH_$(DATE)$(SUFFIX).json
	$(GO) test ./internal/sim -bench Kernel -benchmem -run '^$$' | tee -a /dev/stderr >/dev/null

# bench-check fails when the current tree's sweep throughput regresses more
# than 25% against the latest committed BENCH_*.json (wall-clock sensitive:
# run on a quiet machine; CI's perf job does).
bench-check:
	BENCH_TREND=1 $(GO) test -run TestBenchTrend -v .

# sweep regenerates the paper evaluation at the quick default scale (1/8
# workloads); set SCALE=1 for the full-size numbers (minutes).
SCALE ?= 8
sweep:
	$(GO) run ./cmd/hdlsweep -scale $(SCALE) -out results
