// Package parallel executes real Go loops with dynamic loop self-scheduling.
// It is the shared-memory realization of the distributed chunk-calculation
// idea the paper builds on: workers atomically claim a scheduling step and
// compute their own chunk size from it, so there is no master goroutine and
// — for the step-indexed techniques — no lock on the scheduling path.
//
//	stats, err := parallel.For(len(items), func(i int) { process(items[i]) },
//	    parallel.Options{Technique: dls.GSS})
//
// Stateless techniques (STATIC, SS, FSC, GSS, TSS, FAC2, WF) schedule
// lock-free; FAC, TFSS and the adaptive AWF family serialize their chunk
// calculation behind a mutex (their state is a few words, so the critical
// section is tiny).
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/dls"
)

// Options configures a parallel loop.
type Options struct {
	// Workers defaults to GOMAXPROCS.
	Workers int
	// Technique selects the self-scheduling technique; the zero value is
	// dls.STATIC (equal chunks). Use dls.GSS or dls.FAC2 for irregular
	// loops.
	Technique dls.Technique
	// MinChunk bounds the smallest chunk (amortizes per-chunk overhead).
	MinChunk int
	// Mean and Sigma feed FAC; Overhead feeds FSC and AWF-D/E.
	Mean, Sigma, Overhead float64
	// Weights feed WF.
	Weights []float64
}

// Stats reports one loop execution.
type Stats struct {
	// Workers is the number of goroutines the loop ran on.
	Workers int
	// Chunks is the number of chunks the technique issued.
	Chunks int64
	// Iterations is the total number of iterations executed.
	Iterations int64
	// PerWorker is the number of iterations each worker executed.
	PerWorker []int64
}

// LoadImbalance returns max/mean − 1 over per-worker iteration counts, a
// quick balance check for uniform-cost loops.
func (s Stats) LoadImbalance() float64 {
	if len(s.PerWorker) == 0 || s.Iterations == 0 {
		return 0
	}
	max := s.PerWorker[0]
	for _, v := range s.PerWorker[1:] {
		if v > max {
			max = v
		}
	}
	mean := float64(s.Iterations) / float64(len(s.PerWorker))
	if mean == 0 {
		return 0
	}
	return float64(max)/mean - 1
}

// For runs body(i) for every i in [0, n) on opt.Workers goroutines,
// self-scheduled with opt.Technique. It returns once all iterations have
// completed. Every index is executed exactly once.
func For(n int, body func(i int), opt Options) (Stats, error) {
	return ForRange(n, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	}, opt)
}

// ForRange is For with chunk-granularity bodies: body(lo, hi, worker)
// executes iterations [lo, hi) and can exploit locality across the chunk.
func ForRange(n int, body func(lo, hi, worker int), opt Options) (Stats, error) {
	if n < 0 {
		return Stats{}, fmt.Errorf("parallel: negative loop size %d", n)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tech := opt.Technique
	params := dls.Params{
		N: n, P: workers,
		MinChunk: opt.MinChunk,
		Mean:     opt.Mean, Sigma: opt.Sigma, Overhead: opt.Overhead,
		Weights: opt.Weights,
	}
	fillFAC(&params, tech)
	sched, err := dls.New(tech, params)
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Workers: workers, PerWorker: make([]int64, workers)}
	if n == 0 {
		return st, nil
	}

	var step, scheduled, chunks int64
	adaptive, _ := sched.(dls.Adaptive)
	stateless := isStateless(tech)
	var mu sync.Mutex

	chunkFor := func(s int64, w int) int {
		if stateless {
			return sched.Chunk(int(s), w)
		}
		mu.Lock()
		defer mu.Unlock()
		return sched.Chunk(int(s), w)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var executed int64
			for {
				s := atomic.AddInt64(&step, 1) - 1
				size := chunkFor(s, w)
				if size <= 0 {
					size = 1
				}
				start := atomic.AddInt64(&scheduled, int64(size)) - int64(size)
				if start >= int64(n) {
					break
				}
				end := start + int64(size)
				if end > int64(n) {
					end = int64(n)
				}
				t0 := time.Now()
				body(int(start), int(end), w)
				if adaptive != nil {
					mu.Lock()
					adaptive.Record(w, int(end-start), time.Since(t0).Seconds(), 0)
					mu.Unlock()
				}
				executed += end - start
				atomic.AddInt64(&chunks, 1)
			}
			atomic.AddInt64(&st.PerWorker[w], executed)
		}(w)
	}
	wg.Wait()
	st.Chunks = chunks
	for _, v := range st.PerWorker {
		st.Iterations += v
	}
	return st, nil
}

// fillFAC supplies defaults so FAC/FSC work without explicit statistics.
func fillFAC(p *dls.Params, t dls.Technique) {
	switch t {
	case dls.FAC:
		if p.Mean <= 0 {
			p.Mean = 1
		}
		if p.Sigma < 0 {
			p.Sigma = 0
		}
	case dls.FSC:
		if p.Sigma <= 0 {
			p.Sigma = 0.3
		}
		if p.Overhead <= 0 {
			p.Overhead = 1e-7
		}
	}
}

// isStateless reports whether the technique's Chunk is a pure function and
// can be called concurrently without locking.
func isStateless(t dls.Technique) bool {
	switch t {
	case dls.FAC, dls.TFSS:
		return false
	}
	return !t.IsAdaptive()
}
