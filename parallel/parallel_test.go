package parallel

import (
	"sync/atomic"
	"testing"

	"repro/dls"
)

// runCoverage executes a loop and verifies exactly-once semantics under
// real concurrency.
func runCoverage(t *testing.T, n, workers int, tech dls.Technique) Stats {
	t.Helper()
	counts := make([]int32, n)
	st, err := For(n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	}, Options{Workers: workers, Technique: tech})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("%v: iteration %d executed %d times", tech, i, c)
		}
	}
	if st.Iterations != int64(n) {
		t.Fatalf("%v: Stats.Iterations = %d, want %d", tech, st.Iterations, n)
	}
	return st
}

func TestCoverageAllTechniques(t *testing.T) {
	for _, tech := range dls.All() {
		runCoverage(t, 10000, 8, tech)
	}
}

func TestCoverageEdgeCases(t *testing.T) {
	runCoverage(t, 0, 4, dls.GSS)
	runCoverage(t, 1, 8, dls.GSS)
	runCoverage(t, 7, 16, dls.SS) // more workers than iterations
	runCoverage(t, 100, 1, dls.FAC2)
}

func TestNegativeNRejected(t *testing.T) {
	if _, err := For(-1, func(int) {}, Options{}); err == nil {
		t.Fatal("accepted negative n")
	}
}

func TestDefaultWorkers(t *testing.T) {
	st, err := For(100, func(int) {}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers <= 0 {
		t.Fatalf("Workers = %d", st.Workers)
	}
	if len(st.PerWorker) != st.Workers {
		t.Fatalf("PerWorker length %d != Workers %d", len(st.PerWorker), st.Workers)
	}
}

func TestForRangeChunks(t *testing.T) {
	var chunkCount int64
	var covered int64
	st, err := ForRange(5000, func(lo, hi, w int) {
		atomic.AddInt64(&chunkCount, 1)
		atomic.AddInt64(&covered, int64(hi-lo))
	}, Options{Workers: 4, Technique: dls.TSS})
	if err != nil {
		t.Fatal(err)
	}
	if covered != 5000 {
		t.Fatalf("covered %d iterations", covered)
	}
	if st.Chunks != chunkCount {
		t.Fatalf("Stats.Chunks = %d, callbacks = %d", st.Chunks, chunkCount)
	}
	// TSS on 5000/4: far fewer chunks than SS, more than STATIC.
	if st.Chunks <= 4 || st.Chunks >= 5000 {
		t.Fatalf("TSS chunk count = %d, implausible", st.Chunks)
	}
}

func TestStaticIssuesOneChunkPerWorkerShare(t *testing.T) {
	// The executor is demand-driven even for STATIC (a fast worker may
	// grab several blocks when bodies are trivial), but the block count is
	// exactly P.
	st := runCoverage(t, 1<<16, 8, dls.STATIC)
	if st.Chunks != 8 {
		t.Fatalf("STATIC issued %d chunks, want 8", st.Chunks)
	}
}

func TestSSChunksEqualIterations(t *testing.T) {
	st := runCoverage(t, 4096, 8, dls.SS)
	if st.Chunks != 4096 {
		t.Fatalf("SS issued %d chunks, want 4096", st.Chunks)
	}
}

func TestWeightedFactoringSkewsChunkSizes(t *testing.T) {
	// WF sizes *chunks* by worker weight; under FCFS stepping the executed
	// totals still equalize on uniform loads, so assert on the observed
	// chunk sizes: worker 0's largest grab must be ≈3× worker 1's first-
	// batch grab.
	n := 1 << 15
	counts := make([]int32, n)
	var max0, max1 int64
	var sink int64
	_, err := ForRange(n, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
			// Real per-iteration work so the loop outlives goroutine
			// startup and both workers take part in the first batch.
			x := 0
			for k := 0; k < 200; k++ {
				x += i * k
			}
			if x == -1 {
				atomic.AddInt64(&sink, 1)
			}
		}
		sz := int64(hi - lo)
		m := &max0
		if w == 1 {
			m = &max1
		}
		for {
			cur := atomic.LoadInt64(m)
			if sz <= cur || atomic.CompareAndSwapInt64(m, cur, sz) {
				break
			}
		}
	}, Options{
		Workers:   2,
		Technique: dls.WF,
		Weights:   []float64{3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i] != 1 {
			t.Fatalf("iteration %d executed %d times", i, counts[i])
		}
	}
	// Weights normalize to {1.5, 0.5} and the first-batch nominal is
	// N/(2P) = 8192. Scheduling interleavings vary (a worker may join
	// late), so assert the deterministic bounds: worker 1's chunks never
	// exceed 0.5×8192, worker 0's never exceed 1.5×8192, and whoever ran
	// the first batch took a sizable chunk.
	if max1 > 4096+1 {
		t.Fatalf("worker 1 chunk %d exceeds its weighted bound 4096", max1)
	}
	if max0 > 12288+1 {
		t.Fatalf("worker 0 chunk %d exceeds its weighted bound 12288", max0)
	}
	if max0 < 2048 && max1 < 2048 {
		t.Fatalf("no worker took a first-batch-sized chunk (max0=%d max1=%d)", max0, max1)
	}
}

func TestAdaptiveAWFRuns(t *testing.T) {
	// AWF needs Record plumbing; verify it completes and covers under
	// concurrency with non-trivial bodies.
	n := 20000
	counts := make([]int32, n)
	work := func(i int) {
		atomic.AddInt32(&counts[i], 1)
		s := 0
		for k := 0; k < i%64; k++ {
			s += k
		}
		_ = s
	}
	for _, tech := range []dls.Technique{dls.AWFB, dls.AWFC, dls.AWFD, dls.AWFE} {
		for i := range counts {
			counts[i] = 0
		}
		if _, err := For(n, work, Options{Workers: 8, Technique: tech}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("%v: iteration %d executed %d times", tech, i, c)
			}
		}
	}
}

func TestMinChunkOption(t *testing.T) {
	var minSeen int64 = 1 << 30
	_, err := ForRange(10000, func(lo, hi, w int) {
		sz := int64(hi - lo)
		for {
			cur := atomic.LoadInt64(&minSeen)
			if sz >= cur || atomic.CompareAndSwapInt64(&minSeen, cur, sz) {
				break
			}
		}
	}, Options{Workers: 4, Technique: dls.GSS, MinChunk: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Only the final clamped chunk may be smaller than MinChunk; with
	// 10000 % 64 ≠ 0 tolerate one small chunk but nothing below 1.
	if minSeen < 1 {
		t.Fatalf("minimum chunk %d", minSeen)
	}
}

func TestStatsLoadImbalanceDegenerate(t *testing.T) {
	var s Stats
	if s.LoadImbalance() != 0 {
		t.Fatal("zero stats imbalance != 0")
	}
}

func BenchmarkForGSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := For(1<<16, func(i int) {}, Options{Workers: 8, Technique: dls.GSS})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := For(1<<14, func(i int) {}, Options{Workers: 8, Technique: dls.SS})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForFAC2Irregular(b *testing.B) {
	work := func(i int) {
		s := 0
		for k := 0; k < (i%251)*4; k++ {
			s += k
		}
		_ = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := For(1<<14, work, Options{Workers: 8, Technique: dls.FAC2})
		if err != nil {
			b.Fatal(err)
		}
	}
}
