package parallel_test

import (
	"fmt"
	"sync/atomic"

	"repro/dls"
	"repro/parallel"
)

// Self-schedule a real loop across goroutines with factoring.
func ExampleFor() {
	var sum int64
	stats, err := parallel.For(1000, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	}, parallel.Options{Workers: 4, Technique: dls.FAC2})
	if err != nil {
		panic(err)
	}
	fmt.Println("sum:", sum)
	fmt.Println("iterations:", stats.Iterations)
	// Output:
	// sum: 499500
	// iterations: 1000
}

// ForRange hands whole chunks to the body — useful when the work benefits
// from locality within a chunk.
func ExampleForRange() {
	var chunks int64
	_, err := parallel.ForRange(1<<12, func(lo, hi, worker int) {
		atomic.AddInt64(&chunks, 1)
	}, parallel.Options{Workers: 2, Technique: dls.STATIC})
	if err != nil {
		panic(err)
	}
	fmt.Println("chunks:", chunks)
	// Output: chunks: 2
}
