// Package repro is a from-scratch Go reproduction of
//
//	A. Eleliemy and F. M. Ciorba,
//	"Hierarchical Dynamic Loop Self-Scheduling on Distributed-Memory
//	Systems Using an MPI+MPI Approach", arXiv:1903.09510 (IPDPSW 2019).
//
// Public API:
//
//   - repro/dls — the dynamic loop self-scheduling techniques (STATIC, SS,
//     FSC, GSS, TSS, FAC, FAC2, WF, TFSS, AWF-B/C/D/E, AF, RND) in both
//     sequential and step-indexed (distributed chunk calculation) form.
//   - repro/parallel — self-scheduled parallel loops for real Go programs.
//   - repro/hdls — the paper's experiments: hierarchical MPI+MPI vs.
//     MPI+OpenMP executors on a simulated miniHPC cluster, whole-figure
//     sweeps (Figures 4–7), the scenario engine (heterogeneous topologies,
//     perturbations, synthetic workloads) with robustness sweeps
//     (RunRobustness), and the service surface: JSON (un)marshalling,
//     canonical config hashing (Config.Hash) and validation.
//
// Entry points: cmd/hdlsim runs one diagnosed experiment, cmd/hdlsweep
// regenerates figures and robustness sweeps, cmd/hdlsd serves sweeps as a
// long-running HTTP daemon (bounded worker pool, canonical-hash result
// cache, NDJSON streaming, Prometheus metrics, graceful drain) — or, with
// -role coordinator, shards sweeps across a fleet of worker daemons with
// consistent-hash routing, retries, and circuit breakers while keeping
// responses byte-identical to a single daemon's — and cmd/psiagen runs
// the real application kernels on the host.
//
// The substrates live under internal/: a deterministic process-oriented
// discrete-event engine (internal/sim), the machine model
// (internal/cluster), an MPI-3 runtime model with shared-memory windows and
// lock-polling passive-target RMA (internal/mpi), an OpenMP runtime model
// (internal/openmp), the hierarchical executors (internal/core), scenario
// perturbations (internal/perturb), the HTTP service layer
// (internal/serve), the fleet coordinator (internal/fleet), and the real
// application kernels (internal/mandelbrot, internal/spinimage) whose
// measured per-iteration work builds the workload profiles
// (internal/workload).
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the measured-vs-paper record,
// DESIGN.md for the architecture and substitution rationale, and README.md
// for the 60-second tour.
package repro
