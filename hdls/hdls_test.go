package hdls

import (
	"math"
	"strings"
	"testing"

	"repro/dls"
	"repro/internal/workload"
)

func TestAppParseAndString(t *testing.T) {
	for _, s := range []string{"mandelbrot", "Mandelbrot", "mandel"} {
		if a, err := ParseApp(s); err != nil || a != Mandelbrot {
			t.Fatalf("ParseApp(%q) = %v, %v", s, a, err)
		}
	}
	if a, err := ParseApp("psia"); err != nil || a != PSIA {
		t.Fatalf("ParseApp(psia) = %v, %v", a, err)
	}
	if _, err := ParseApp("nope"); err == nil {
		t.Fatal("ParseApp accepted junk")
	}
	if Mandelbrot.String() != "Mandelbrot" || PSIA.String() != "PSIA" {
		t.Fatal("App.String broken")
	}
}

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{
		App: Mandelbrot, Nodes: 2,
		Inter: dls.GSS, Intra: dls.STATIC,
		Approach: MPIMPI, Scale: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 32 {
		t.Fatalf("Workers = %d, want 32 (default 16 per node)", res.Workers)
	}
	if res.ParallelTime <= 0 {
		t.Fatal("non-positive parallel time")
	}
}

func TestRunCustomProfile(t *testing.T) {
	prof := workload.Uniform(512, 20e-6, 80e-6, 3)
	res, err := Run(Config{
		Profile: prof, Nodes: 2, WorkersPerNode: 4,
		Inter: dls.FAC2, Intra: dls.GSS, Approach: MPIOpenMP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 8 {
		t.Fatalf("Workers = %d, want 8", res.Workers)
	}
}

func TestRunFigureSmall(t *testing.T) {
	var cells []string
	fr, err := RunFigure(5, Mandelbrot, FigureOptions{
		Scale: 64, Nodes: []int{2, 4},
		Progress: func(c string) { cells = append(cells, c) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Inter != dls.GSS {
		t.Fatalf("figure 5 inter = %v, want GSS", fr.Inter)
	}
	// 5 intras × 2 nodes × 2 approaches minus 2×2×1 unsupported OpenMP cells.
	wantCells := 5*2*2 - 2*2
	if len(cells) != wantCells {
		t.Fatalf("progress reported %d cells, want %d", len(cells), wantCells)
	}
	// TSS/FAC2 intra are NaN for MPI+OpenMP (Intel runtime limitation).
	for ii, intra := range fr.Intras {
		for ni := range fr.Nodes {
			omp := fr.Times[MPIOpenMP][ii][ni]
			mm := fr.Times[MPIMPI][ii][ni]
			if intra == dls.TSS || intra == dls.FAC2 {
				if !math.IsNaN(omp) {
					t.Fatalf("OpenMP %v cell should be NaN", intra)
				}
			} else if math.IsNaN(omp) {
				t.Fatalf("OpenMP %v cell unexpectedly NaN", intra)
			}
			if math.IsNaN(mm) || mm <= 0 {
				t.Fatalf("MPI+MPI %v cell = %v", intra, mm)
			}
		}
	}
	// More nodes must not be slower in any MPI+MPI cell of this figure.
	for ii := range fr.Intras {
		if fr.Times[MPIMPI][ii][1] > fr.Times[MPIMPI][ii][0]*1.1 {
			t.Fatalf("MPI+MPI %v: 4 nodes (%v) slower than 2 nodes (%v)",
				fr.Intras[ii], fr.Times[MPIMPI][ii][1], fr.Times[MPIMPI][ii][0])
		}
	}
}

func TestRunFigureExtendedFillsCells(t *testing.T) {
	fr, err := RunFigure(4, Mandelbrot, FigureOptions{
		Scale: 64, Nodes: []int{2}, Extended: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for ii := range fr.Intras {
		if math.IsNaN(fr.Times[MPIOpenMP][ii][0]) {
			t.Fatalf("extended sweep left %v cell NaN", fr.Intras[ii])
		}
	}
}

func TestRunFigureRejectsUnknownFigure(t *testing.T) {
	if _, err := RunFigure(3, Mandelbrot, FigureOptions{}); err == nil {
		t.Fatal("accepted figure 3")
	}
}

func TestTableAndCSV(t *testing.T) {
	fr, err := RunFigure(6, PSIA, FigureOptions{Scale: 64, Nodes: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	tbl := fr.Table()
	if !strings.Contains(tbl, "TSS") || !strings.Contains(tbl, "PSIA") {
		t.Fatalf("table missing headers:\n%s", tbl)
	}
	if !strings.Contains(tbl, "n/a") {
		t.Fatalf("table missing n/a marks for unsupported cells:\n%s", tbl)
	}
	csv := fr.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+5*2*1 {
		t.Fatalf("CSV has %d lines, want 11:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "figure,app,inter") {
		t.Fatalf("bad CSV header %q", lines[0])
	}
	if !strings.Contains(csv, ",NA") {
		t.Fatal("CSV missing NA cells")
	}
}

func TestSpeedupLookup(t *testing.T) {
	fr, err := RunFigure(5, Mandelbrot, FigureOptions{Scale: 64, Nodes: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	s := fr.Speedup(dls.STATIC, 2)
	if math.IsNaN(s) || s <= 0 {
		t.Fatalf("Speedup = %v", s)
	}
	if !math.IsNaN(fr.Speedup(dls.STATIC, 99)) {
		t.Fatal("Speedup for missing node count should be NaN")
	}
	if !math.IsNaN(fr.Speedup(dls.TSS, 2)) {
		t.Fatal("Speedup against an n/a cell should be NaN")
	}
}

func TestIdealTimeScalesWithWorkers(t *testing.T) {
	a := IdealTime(Mandelbrot, 64, 2, 16)
	b := IdealTime(Mandelbrot, 64, 4, 16)
	ratio := float64(a) / float64(b)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("ideal time ratio = %v, want 2", ratio)
	}
}

// TestPaperQuotedRatios checks the paper's §5 headline numbers in shape:
// GSS+STATIC Mandelbrot — MPI+OpenMP/MPI+MPI ≈ 61.5/19.6 ≈ 3.1× at the
// smallest size; PSIA — 245/233 ≈ 1.05×, a much smaller win. We assert the
// ordering and magnitudes loosely (×2 bands), not the absolute seconds.
func TestPaperQuotedRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	mandel, err := RunFigure(5, Mandelbrot, FigureOptions{Scale: 16, Nodes: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	rm := mandel.Speedup(dls.STATIC, 2)
	if rm < 1.5 {
		t.Fatalf("Mandelbrot GSS+STATIC speedup = %.2f, paper reports ≈3.1", rm)
	}
	psia, err := RunFigure(5, PSIA, FigureOptions{Scale: 16, Nodes: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	rp := psia.Speedup(dls.STATIC, 2)
	if rp < 0.95 {
		t.Fatalf("PSIA GSS+STATIC speedup = %.2f, MPI+MPI should not lose", rp)
	}
	if rp >= rm {
		t.Fatalf("PSIA speedup %.2f not smaller than Mandelbrot's %.2f (paper: 1.05 vs 3.1)", rp, rm)
	}
}

func TestEfficiencyTable(t *testing.T) {
	fr, err := RunFigure(5, Mandelbrot, FigureOptions{Scale: 64, Nodes: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	e := fr.Efficiency(MPIMPI, dls.STATIC, 2, 64, 16)
	if math.IsNaN(e) || e <= 0 || e > 1.001 {
		t.Fatalf("efficiency = %v, want (0,1]", e)
	}
	// MPI+MPI GSS+STATIC runs near-ideal on this workload.
	if e < 0.85 {
		t.Fatalf("MPI+MPI GSS+STATIC efficiency = %.2f, want near 1", e)
	}
	// Unavailable cell.
	if !math.IsNaN(fr.Efficiency(MPIOpenMP, dls.TSS, 2, 64, 16)) {
		t.Fatal("efficiency of an n/a cell should be NaN")
	}
	tbl := fr.EfficiencyTable(64, 16)
	if !strings.Contains(tbl, "efficiency") || !strings.Contains(tbl, "n/a") {
		t.Fatalf("efficiency table malformed:\n%s", tbl)
	}
}

func TestNoWaitThroughFacade(t *testing.T) {
	res, err := Run(Config{
		App: Mandelbrot, Nodes: 2, Scale: 64,
		Inter: dls.GSS, Intra: dls.STATIC,
		Approach: MPIOpenMPNoWait,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BarrierWait != 0 {
		t.Fatalf("nowait executor reported barrier wait %v", res.BarrierWait)
	}
}

func TestNoiseThroughFacade(t *testing.T) {
	a, err := Run(Config{
		App: PSIA, Nodes: 2, Scale: 64,
		Inter: dls.FAC2, Intra: dls.GSS, Approach: MPIMPI,
		NoiseCV: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{
		App: PSIA, Nodes: 2, Scale: 64,
		Inter: dls.FAC2, Intra: dls.GSS, Approach: MPIMPI,
		NoiseCV: 0.2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.ParallelTime == b.ParallelTime {
		t.Fatal("different seeds with noise gave identical times")
	}
}
