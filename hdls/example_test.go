package hdls_test

import (
	"fmt"

	"repro/dls"
	"repro/hdls"
)

// Run one cell of the paper's evaluation: GSS across nodes, STATIC within,
// proposed MPI+MPI approach, Mandelbrot workload. Virtual times are
// deterministic, so the comparison below always holds.
func ExampleRun() {
	mm, err := hdls.Run(hdls.Config{
		App: hdls.Mandelbrot, Nodes: 2, Scale: 128,
		Inter: dls.GSS, Intra: dls.STATIC, Approach: hdls.MPIMPI,
	})
	if err != nil {
		panic(err)
	}
	omp, err := hdls.Run(hdls.Config{
		App: hdls.Mandelbrot, Nodes: 2, Scale: 128,
		Inter: dls.GSS, Intra: dls.STATIC, Approach: hdls.MPIOpenMP,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("MPI+MPI faster:", mm.ParallelTime < omp.ParallelTime)
	fmt.Println("barrier-free:", mm.BarrierWait == 0)
	// Output:
	// MPI+MPI faster: true
	// barrier-free: true
}
