package hdls

import (
	"testing"

	"repro/dls"
)

// TestLargePRobustSweepSmoke is the large-P shard's quick end-to-end check:
// a 16-node robustness sweep (256 ranks per cell, pooled arenas, the
// goroutine-free MPI+MPI executor) over a synthetic workload. CI runs it
// under -race to shake out sharing bugs between the pooled cells.
func TestLargePRobustSweepSmoke(t *testing.T) {
	rr, err := RunRobustness(RobustnessOptions{
		Nodes:          16,
		WorkersPerNode: 16,
		Techniques:     []dls.Technique{dls.GSS, dls.FAC2},
		Workload:       "gaussian:n=4096,cv=0.5",
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rr.Rows))
	}
	for _, row := range rr.Rows {
		if row.ParallelTime <= 0 {
			t.Fatalf("%s: non-positive parallel time", row.Technique)
		}
		if row.GlobalChunks < 16 {
			t.Fatalf("%s: only %d global chunks on 16 nodes", row.Technique, row.GlobalChunks)
		}
	}
}

// TestLargePFigureCellMatchesSummary cross-checks the two run paths on a
// 16-node cell: RunSummary (the pooled sweep path) must agree with Run's
// full result on every scalar it reports.
func TestLargePFigureCellMatchesSummary(t *testing.T) {
	cfg := Config{
		App: Mandelbrot, Nodes: 16, Scale: 256,
		Inter: dls.GSS, Intra: dls.STATIC, Approach: MPIMPI,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ParallelTime != res.ParallelTime ||
		sum.GlobalChunks != res.GlobalChunks ||
		sum.LocalChunks != res.LocalChunks ||
		sum.LockAttempts != res.LockAttempts ||
		sum.Workers != res.Workers {
		t.Fatalf("summary %+v disagrees with result (time %v, chunks %d/%d, attempts %d, workers %d)",
			sum, res.ParallelTime, res.GlobalChunks, res.LocalChunks, res.LockAttempts, res.Workers)
	}
}
