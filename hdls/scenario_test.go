package hdls

import (
	"strings"
	"testing"

	"repro/dls"
	"repro/internal/sim"
)

// TestRobustnessHeteroDynamicBeatsStatic is the scenario engine's
// acceptance property: on a heterogeneous machine with a 2× node speed
// skew, the dynamic techniques (GSS, FAC2) must beat STATIC on parallel
// time — the inter-node rebalancing the DLS literature predicts and the
// paper's homogeneous evaluation cannot show — and must equalize node
// finish times (node-finish CoV) by at least an order of magnitude.
func TestRobustnessHeteroDynamicBeatsStatic(t *testing.T) {
	rr, err := RunRobustness(RobustnessOptions{
		Techniques: []dls.Technique{dls.STATIC, dls.GSS, dls.FAC2},
		Topology:   Topology{NodeSpeeds: []float64{1, 0.5}},
		Workload:   "gaussian:n=8192,mean=100e-6,cv=0.3",
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]RobustnessRow{}
	for _, r := range rr.Rows {
		rows[r.Technique] = r
	}
	static := rows["STATIC"]
	for _, dyn := range []string{"GSS", "FAC2"} {
		r := rows[dyn]
		if r.ParallelTime <= 0 || static.ParallelTime <= 0 {
			t.Fatalf("missing results: %+v", rr.Rows)
		}
		if r.ParallelTime >= static.ParallelTime {
			t.Errorf("%s parallel time %.6f not better than STATIC %.6f under 2x speed skew",
				dyn, r.ParallelTime, static.ParallelTime)
		}
		if r.NodeFinishCoV*10 >= static.NodeFinishCoV {
			t.Errorf("%s node-finish CoV %.4f not ≪ STATIC %.4f under 2x speed skew",
				dyn, r.NodeFinishCoV, static.NodeFinishCoV)
		}
	}
	if !strings.Contains(rr.Table(), "STATIC") {
		t.Error("Table() lost the STATIC row")
	}
}

// TestTopologyCoreCountsCapWorkers checks the per-node worker plumbing:
// NodeCores caps WorkersPerNode per node, and the flat worker slices size
// to the sum.
func TestTopologyCoreCountsCapWorkers(t *testing.T) {
	res, err := Run(Config{
		Nodes: 2, WorkersPerNode: 16,
		Inter: dls.GSS, Intra: dls.STATIC,
		Topology: Topology{NodeCores: []int{16, 8}, NodeSpeeds: []float64{1, 0.5}},
		Workload: "uniform:n=2048",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeWorkers) != 2 || res.NodeWorkers[0] != 16 || res.NodeWorkers[1] != 8 {
		t.Fatalf("NodeWorkers = %v, want [16 8]", res.NodeWorkers)
	}
	if res.Workers != 24 || len(res.WorkerFinish) != 24 {
		t.Fatalf("Workers = %d (finish len %d), want 24", res.Workers, len(res.WorkerFinish))
	}
	if len(res.NodeFinish) != 2 {
		t.Fatalf("NodeFinish has %d entries, want 2", len(res.NodeFinish))
	}
}

// TestPerturbationSlowsRuns checks the perturbation path end to end: a
// perturbed run takes strictly longer than the smooth-machine run of the
// same Config, and background load alone scales compute deterministically.
func TestPerturbationSlowsRuns(t *testing.T) {
	base := Config{
		Nodes: 2, Inter: dls.GSS, Intra: dls.STATIC,
		Workload: "uniform:n=4096",
	}
	smooth, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := base
	perturbed.Perturbation = Perturbation{
		SlowdownRate: 100, SlowdownFactor: 3, SlowdownDuration: 2e-3 * sim.Second,
		BackgroundLoad: []float64{0.3},
	}
	slow, err := Run(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ParallelTime <= smooth.ParallelTime {
		t.Errorf("perturbed run %.6f not slower than smooth %.6f",
			float64(slow.ParallelTime), float64(smooth.ParallelTime))
	}
	// Background load of 0.3 alone stretches pure compute by 1/(1−0.3);
	// with dynamic scheduling the makespan should grow by a comparable
	// factor (loosely bounded to stay robust to scheduling artifacts).
	bgOnly := base
	bgOnly.Perturbation = Perturbation{BackgroundLoad: []float64{0.3}}
	bg, err := Run(bgOnly)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(bg.ParallelTime) / float64(smooth.ParallelTime)
	if ratio < 1.2 || ratio > 1.6 {
		t.Errorf("background-load ratio %.3f outside [1.2, 1.6] (expected ≈ 1/(1−0.3) ≈ 1.43)", ratio)
	}
}

// TestZeroScenarioFieldsMatchLegacyPath guards the acceptance criterion
// that all-new-Config-fields-at-zero reproduces the legacy experiment
// byte for byte.
func TestZeroScenarioFieldsMatchLegacyPath(t *testing.T) {
	legacy, err := Run(Config{App: Mandelbrot, Nodes: 2, Inter: dls.GSS, Intra: dls.STATIC, Scale: 64})
	if err != nil {
		t.Fatal(err)
	}
	zeroed, err := Run(Config{
		App: Mandelbrot, Nodes: 2, Inter: dls.GSS, Intra: dls.STATIC, Scale: 64,
		Topology: Topology{}, Perturbation: Perturbation{}, Workload: "",
	})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.ParallelTime != zeroed.ParallelTime || legacy.GlobalChunks != zeroed.GlobalChunks ||
		legacy.LocalChunks != zeroed.LocalChunks || legacy.LockAttempts != zeroed.LockAttempts {
		t.Fatalf("zero-valued scenario fields changed the run: %+v vs %+v", legacy, zeroed)
	}
}

// TestWorkloadSpecErrors surfaces spec parse errors through Run.
func TestWorkloadSpecErrors(t *testing.T) {
	for _, spec := range []string{"nope", "uniform:lo=5,hi=2", "gaussian:bogus=1", "uniform:n=-3"} {
		if _, err := Run(Config{Workload: spec, Inter: dls.GSS}); err == nil {
			t.Errorf("Run accepted bad workload spec %q", spec)
		}
	}
}
