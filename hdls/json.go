package hdls

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
)

// Summary is the compact per-cell outcome returned by RunSummary: scalars
// only (parallel time, imbalance, chunk and lock counters), no per-worker
// slices, so sweep drivers and the hdlsd service aggregate incrementally.
// It marshals to stable snake_case JSON.
type Summary = core.Summary

// ParseApproach maps an approach name ("mpi+mpi", "MPI+OpenMP", "nowait",
// …) to its Approach value, case-insensitively.
func ParseApproach(s string) (Approach, error) { return core.ParseApproach(s) }

// MarshalJSON encodes the application as its name ("Mandelbrot", "PSIA").
func (a App) MarshalJSON() ([]byte, error) {
	switch a {
	case Mandelbrot, PSIA:
		return json.Marshal(a.String())
	}
	return nil, fmt.Errorf("hdls: cannot marshal unknown app %d", int(a))
}

// UnmarshalJSON decodes an application from any spelling ParseApp accepts.
func (a *App) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("hdls: app must be a JSON string: %w", err)
	}
	v, err := ParseApp(s)
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// Canonical returns the configuration with every defaulted field made
// explicit (Nodes 4, WorkersPerNode 16, Scale 8, Seed 1) and every field
// that cannot affect a Summary cleared (CollectTrace). Two configurations
// that run the same experiment therefore compare equal after Canonical,
// and Hash — which hashes the canonical form — identifies a cell's result:
// simulations are bit-deterministic functions of the canonical config, so
// equal hashes mean byte-identical summaries. hdlsd keys its result cache
// on exactly this property.
func (c Config) Canonical() Config {
	out := c.withDefaults()
	out.CollectTrace = false
	return out
}

// Hash returns a hex SHA-256 digest of the canonical configuration,
// stable across processes. The programmatic Profile override — excluded
// from the JSON form — is folded in by content (name and per-iteration
// costs), so two configs with different in-memory profiles never collide.
func (c Config) Hash() string {
	canon := c.Canonical()
	h := sha256.New()
	buf, err := json.Marshal(canon)
	if err != nil {
		// Only unknown enum values can fail to marshal; make the hash
		// reflect the raw values rather than masking the bad config.
		fmt.Fprintf(h, "unmarshalable:%#v", canon)
	}
	h.Write(buf)
	if canon.Profile != nil {
		h.Write([]byte{0})
		h.Write([]byte(canon.Profile.Name()))
		h.Write([]byte{0})
		var w [8]byte
		for _, cost := range canon.Profile.Costs() {
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(cost))
			h.Write(w[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HashKey returns the first eight bytes of Hash as a big-endian uint64: a
// uniformly distributed routing key for placing cells on consistent-hash
// rings (internal/fleet). Equal canonical configs map to equal keys, so a
// fleet routes every resubmission of a cell to the same worker and that
// worker's result cache stays hot; HashKeyOf recovers the same key from a
// hash string a client already holds.
func (c Config) HashKey() uint64 { return hashKeyOf(c.Hash()) }

// HashKeyOf returns the routing key (see HashKey) embedded in a Config.Hash
// string. Malformed strings hash to 0; routing stays well-defined either
// way because the ring only needs consistency, not collision resistance.
func HashKeyOf(hash string) uint64 { return hashKeyOf(hash) }

func hashKeyOf(hash string) uint64 {
	if len(hash) < 16 {
		return 0
	}
	b, err := hex.DecodeString(hash[:16])
	if err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Validate checks the configuration without running it: machine sizes,
// workload spec syntax, technique support at each level, and the paper's
// OpenMP-runtime constraint (TSS/FAC2 intra need ExtendedRuntime). It
// returns the same errors Run would, so services can map them to 400s
// before committing simulation time.
func (c Config) Validate() error {
	cc, err := coreConfig(c)
	if err != nil {
		return err
	}
	return cc.Validate()
}
