// Package hdls is the public experiment API of the hierarchical dynamic
// loop self-scheduling reproduction (Eleliemy & Ciorba, arXiv:1903.09510).
// It wires the simulated miniHPC cluster, the paper's two applications
// (Mandelbrot and PSIA) and the two hierarchical executors (MPI+MPI and
// MPI+OpenMP) into single-call experiments and whole-figure sweeps.
//
// A minimal run:
//
//	res, err := hdls.Run(hdls.Config{
//	    App: hdls.Mandelbrot, Nodes: 4,
//	    Inter: dls.GSS, Intra: dls.STATIC,
//	    Approach: hdls.MPIMPI,
//	})
//
// Figures 4–7 of the paper are regenerated with RunFigure.
package hdls

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perturb"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Topology customizes the simulated machine relative to the miniHPC preset.
// The zero value is the paper's homogeneous 16-core Xeon configuration.
// Patterns shorter than the node count are tiled (e.g. {1, 0.5} alternates
// full- and half-speed nodes).
type Topology struct {
	// NodeSpeeds holds relative per-node core speeds (1.0 = Xeon reference
	// core). Chunk execution time divides by the host node's speed.
	NodeSpeeds []float64 `json:"node_speeds,omitempty"`
	// NodeCores holds per-node core counts (e.g. {16, 64} alternates Xeon
	// and KNL partitions). Config.WorkersPerNode acts as a per-node cap.
	NodeCores []int `json:"node_cores,omitempty"`
}

// IsZero reports whether the topology is the paper default.
func (t Topology) IsZero() bool { return len(t.NodeSpeeds) == 0 && len(t.NodeCores) == 0 }

// String renders the topology for scenario labels ("miniHPC", or the
// deviation from it).
func (t Topology) String() string {
	if t.IsZero() {
		return "miniHPC"
	}
	s := "miniHPC"
	if len(t.NodeSpeeds) > 0 {
		s += fmt.Sprintf(" speeds=%v", t.NodeSpeeds)
	}
	if len(t.NodeCores) > 0 {
		s += fmt.Sprintf(" cores=%v", t.NodeCores)
	}
	return s
}

// apply projects the topology onto a cluster description of cl.Nodes nodes.
func (t Topology) apply(cl *cluster.Config) {
	if t.IsZero() {
		return
	}
	cl.Name += "-custom"
	if len(t.NodeSpeeds) > 0 {
		cl.NodeSpeed = make([]float64, cl.Nodes)
		for i := range cl.NodeSpeed {
			cl.NodeSpeed[i] = t.NodeSpeeds[i%len(t.NodeSpeeds)]
		}
	}
	if len(t.NodeCores) > 0 {
		cl.NodeCores = make([]int, cl.Nodes)
		for i := range cl.NodeCores {
			cl.NodeCores[i] = t.NodeCores[i%len(t.NodeCores)]
		}
	}
}

// Perturbation re-exports the scenario perturbation description
// (system noise, transient slowdowns, per-node background load); see
// internal/perturb for the replay-determinism contract.
type Perturbation = perturb.Config

// Approach re-exports the executor selection.
type Approach = core.Approach

// The available approaches.
const (
	MPIMPI          = core.MPIMPI
	MPIOpenMP       = core.MPIOpenMP
	MPIOpenMPNoWait = core.MPIOpenMPNoWait
)

// App selects the workload application.
type App int

// The paper's two applications.
const (
	// Mandelbrot: escape-time kernel, highly imbalanced (§4).
	Mandelbrot App = iota
	// PSIA: parallel spin-image generation, mildly imbalanced (§4).
	PSIA
)

// String returns the application name ("Mandelbrot", "PSIA").
func (a App) String() string {
	switch a {
	case Mandelbrot:
		return "Mandelbrot"
	case PSIA:
		return "PSIA"
	}
	return fmt.Sprintf("App(%d)", int(a))
}

// ParseApp maps an application name to its App value.
func ParseApp(s string) (App, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "mandelbrot", "mandel":
		return Mandelbrot, nil
	case "psia", "spinimage", "spin-image":
		return PSIA, nil
	}
	return 0, fmt.Errorf("hdls: unknown application %q", s)
}

// Config describes one experiment. Zero values select the paper defaults:
// 16 workers per node, scale 8 (fast), seed 1.
type Config struct {
	// App selects the paper workload (Mandelbrot or PSIA); Workload and
	// Profile override it.
	App App `json:"app"`
	// Nodes is the simulated compute-node count (default 4).
	Nodes int `json:"nodes,omitempty"`
	// WorkersPerNode defaults to 16, the paper's configuration.
	WorkersPerNode int `json:"workers_per_node,omitempty"`
	// Inter is the DLS technique at the inter-node level.
	Inter dls.Technique `json:"inter"`
	// Intra is the DLS technique at the intra-node level.
	Intra dls.Technique `json:"intra"`
	// Approach selects the executor (MPI+MPI, MPI+OpenMP, or the no-wait
	// variant).
	Approach Approach `json:"approach"`
	// Scale divides the workload (N and total work together, preserving
	// per-iteration granularity). 1 is the full experiment size; the
	// default 8 keeps single runs interactive.
	Scale int `json:"scale,omitempty"`
	// Seed drives the engine RNG; runs are bit-deterministic per seed.
	Seed int64 `json:"seed,omitempty"`
	// Profile overrides App with a custom workload. It is a programmatic
	// escape hatch only: JSON round-trips drop it (Hash still folds it in).
	Profile *workload.Profile `json:"-"`
	// Workload, when non-empty, overrides App with a synthetic workload
	// spec parsed by workload.ParseSpec (e.g. "gaussian:n=8192,cv=0.5").
	// Profile takes precedence over both.
	Workload string `json:"workload,omitempty"`
	// Topology customizes node speeds and core counts; the zero value is
	// the paper's homogeneous machine.
	Topology Topology `json:"topology,omitzero"`
	// Perturbation injects system noise, transient slowdowns, and
	// background load; the zero value keeps the machine smooth.
	Perturbation Perturbation `json:"perturbation,omitzero"`
	// ExtendedRuntime enables TSS/FAC2 intra-node under MPI+OpenMP.
	ExtendedRuntime bool `json:"extended_runtime,omitempty"`
	// CollectTrace records the full event trace. Summary-returning paths
	// ignore it, so Canonical clears it.
	CollectTrace bool `json:"collect_trace,omitempty"`
	// NoiseCV adds systemic variability (0 = deterministic machine).
	NoiseCV float64 `json:"noise_cv,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.WorkersPerNode == 0 {
		c.WorkersPerNode = 16
	}
	if c.Scale == 0 {
		c.Scale = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is the outcome of one experiment.
type Result = core.Result

// profileFor resolves the workload.
func profileFor(c Config) (*workload.Profile, error) {
	if c.Profile != nil {
		return c.Profile, nil
	}
	if c.Workload != "" {
		return workload.ParseSpec(c.Workload, c.Seed)
	}
	switch c.App {
	case PSIA:
		return workload.PSIAProfile(c.Scale), nil
	default:
		return workload.MandelbrotProfile(c.Scale), nil
	}
}

// coreConfig resolves cfg into the executor configuration.
func coreConfig(cfg Config) (core.Config, error) {
	// Reject nonsense sizes up front with a clear error: negative counts
	// would otherwise panic deep inside cluster/topology slice allocation.
	if cfg.Nodes < 0 {
		return core.Config{}, fmt.Errorf("hdls: Nodes must be >= 1 (got %d)", cfg.Nodes)
	}
	if cfg.WorkersPerNode < 0 {
		return core.Config{}, fmt.Errorf("hdls: WorkersPerNode must be >= 1 (got %d)", cfg.WorkersPerNode)
	}
	if cfg.Scale < 0 {
		return core.Config{}, fmt.Errorf("hdls: Scale must be >= 1 (got %d)", cfg.Scale)
	}
	c := cfg.withDefaults()
	cl := cluster.MiniHPC(c.Nodes)
	cl.NoiseCV = c.NoiseCV
	c.Topology.apply(&cl)
	prof, err := profileFor(c)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Cluster:         cl,
		WorkersPerNode:  c.WorkersPerNode,
		Inter:           c.Inter,
		Intra:           c.Intra,
		Workload:        prof,
		Approach:        c.Approach,
		Seed:            c.Seed,
		Perturb:         c.Perturbation,
		ExtendedRuntime: c.ExtendedRuntime,
		CollectTrace:    c.CollectTrace,
	}, nil
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	cc, err := coreConfig(cfg)
	if err != nil {
		return nil, err
	}
	return core.Run(cc)
}

// RunSummary executes one experiment returning only the compact per-cell
// scalars (core.Summary). The sweep drivers use it so thousand-cell sweeps
// aggregate incrementally instead of retaining per-worker slices.
func RunSummary(cfg Config) (Summary, error) {
	cc, err := coreConfig(cfg)
	if err != nil {
		return Summary{}, err
	}
	return core.RunSummary(cc)
}

// RunSummaryCtx is RunSummary with cancellation: when ctx is canceled the
// in-flight simulation aborts within a few hundred events and the context's
// error is returned. A run that completes is byte-identical to RunSummary —
// the engine only ever reads the cancellation flag — so services can hand
// every request's context down without weakening the determinism contract.
func RunSummaryCtx(ctx context.Context, cfg Config) (Summary, error) {
	if ctx == nil || ctx.Done() == nil {
		return RunSummary(cfg)
	}
	if err := ctx.Err(); err != nil {
		return Summary{}, err
	}
	cc, err := coreConfig(cfg)
	if err != nil {
		return Summary{}, err
	}
	var flag atomic.Bool
	stop := context.AfterFunc(ctx, func() { flag.Store(true) })
	defer stop()
	cc.Interrupt = &flag
	sum, err := core.RunSummary(cc)
	if errors.Is(err, sim.ErrInterrupted) {
		if cerr := ctx.Err(); cerr != nil {
			return Summary{}, cerr
		}
	}
	return sum, err
}

// --------------------------------------------------------------- figures --

// FigureInter maps the paper's figure number to its first-level technique.
var FigureInter = map[int]dls.Technique{
	4: dls.STATIC,
	5: dls.GSS,
	6: dls.TSS,
	7: dls.FAC2,
}

// FigureIntras is the second-level technique set of every figure.
var FigureIntras = []dls.Technique{dls.STATIC, dls.SS, dls.GSS, dls.TSS, dls.FAC2}

// DefaultNodes is the paper's system-size sweep.
var DefaultNodes = []int{2, 4, 8, 16}

// FigureOptions configures a figure sweep.
type FigureOptions struct {
	// Scale is the workload scale divisor (default 8).
	Scale int
	// Nodes lists the system sizes to sweep (default 2,4,8,16).
	Nodes []int
	// Seed drives every cell's engine RNG (default 1).
	Seed int64
	// Extended fills in the MPI+OpenMP TSS/FAC2 cells the paper could not
	// run on the Intel runtime. Off by default for fidelity.
	Extended bool
	// Approaches defaults to {MPIMPI, MPIOpenMP}.
	Approaches []Approach
	// Progress, if non-nil, observes each completed cell. Cells run
	// concurrently (see Parallelism), so calls arrive in completion order,
	// serialized by the sweep.
	Progress func(cell string)
	// Parallelism bounds how many cells run concurrently. Each cell is an
	// independent simulation engine, so cells parallelize across host cores
	// without affecting results: every cell's outcome is a pure function of
	// its own Config, and results land in their (intra, nodes, approach)
	// slots regardless of completion order. 0 means GOMAXPROCS; 1 runs the
	// sweep sequentially.
	Parallelism int
}

// FigureResult holds a regenerated figure: Times[approach][intra][node
// index] in seconds, with NaN marking combinations that are unsupported
// (MPI+OpenMP with TSS/FAC2 intra on the stock runtime).
type FigureResult struct {
	// Figure is the paper figure number (4-7).
	Figure int
	// App is the panel's application.
	App App
	// Inter is the figure's first-level technique.
	Inter dls.Technique
	// Intras lists the second-level techniques, one block per entry.
	Intras []dls.Technique
	// Nodes lists the swept system sizes, one column per entry.
	Nodes []int
	// Approaches lists the executors compared, one row per entry.
	Approaches []Approach
	// Times holds the cells: Times[approach][intra index][node index]
	// in seconds, NaN for unsupported combinations.
	Times map[Approach][][]float64
}

// RunFigure regenerates one panel (one application) of the paper's Figure
// 4, 5, 6 or 7.
func RunFigure(figure int, app App, opt FigureOptions) (*FigureResult, error) {
	inter, ok := FigureInter[figure]
	if !ok {
		return nil, fmt.Errorf("hdls: no figure %d (4–7 exist)", figure)
	}
	if opt.Scale == 0 {
		opt.Scale = 8
	}
	if opt.Nodes == nil {
		opt.Nodes = DefaultNodes
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Approaches == nil {
		opt.Approaches = []Approach{MPIMPI, MPIOpenMP}
	}
	fr := &FigureResult{
		Figure:     figure,
		App:        app,
		Inter:      inter,
		Intras:     FigureIntras,
		Nodes:      opt.Nodes,
		Approaches: opt.Approaches,
		Times:      map[Approach][][]float64{},
	}
	for _, ap := range opt.Approaches {
		fr.Times[ap] = make([][]float64, len(fr.Intras))
		for i := range fr.Intras {
			fr.Times[ap][i] = make([]float64, len(opt.Nodes))
		}
	}
	// Enumerate the cells, then run them on a host-core worker pool. Each
	// cell is an independent engine, so only the figure-table slot it writes
	// is shared; results are deterministic regardless of completion order.
	type cell struct {
		ii, ni int
		ap     Approach
		name   string
	}
	var cells []cell
	for ii, intra := range fr.Intras {
		for ni, nodes := range opt.Nodes {
			for _, ap := range opt.Approaches {
				cellName := fmt.Sprintf("fig%d %v %v+%v %dn %v", figure, app, inter, intra, nodes, ap)
				supported := true
				if (ap == MPIOpenMP || ap == MPIOpenMPNoWait) && !opt.Extended {
					if intra == dls.TSS || intra == dls.FAC2 {
						supported = false // Intel runtime limitation (§5)
					}
				}
				if !supported {
					fr.Times[ap][ii][ni] = math.NaN()
					continue
				}
				cells = append(cells, cell{ii: ii, ni: ni, ap: ap, name: cellName})
			}
		}
	}

	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	var (
		next   atomic.Int64
		mu     sync.Mutex // guards errIdx/errVal and Progress calls
		errIdx = -1       // lowest failing cell index, for deterministic errors
		errVal error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				c := cells[i]
				mu.Lock()
				stop := errVal != nil
				mu.Unlock()
				if stop {
					return
				}
				res, err := RunSummary(Config{
					App: app, Nodes: opt.Nodes[c.ni], Inter: inter, Intra: fr.Intras[c.ii],
					Approach: c.ap, Scale: opt.Scale, Seed: opt.Seed,
					ExtendedRuntime: opt.Extended,
				})
				if err != nil {
					mu.Lock()
					if errVal == nil || i < errIdx {
						errIdx, errVal = i, fmt.Errorf("%s: %w", c.name, err)
					}
					mu.Unlock()
					return
				}
				fr.Times[c.ap][c.ii][c.ni] = float64(res.ParallelTime)
				if opt.Progress != nil {
					mu.Lock()
					opt.Progress(c.name)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if errVal != nil {
		return nil, errVal
	}
	return fr, nil
}

// Table renders the figure as a text table shaped like the paper's panels:
// one block per intra-node technique, rows per approach, columns per
// system size.
func (fr *FigureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d(%s): inter-node %v, %s, parallel loop time (s)\n",
		fr.Figure, strings.ToLower(fr.App.String()[:1]), fr.Inter, fr.App)
	fmt.Fprintf(&b, "%-22s", "intra \\ nodes")
	for _, n := range fr.Nodes {
		fmt.Fprintf(&b, "%10d", n)
	}
	b.WriteString("\n")
	for ii, intra := range fr.Intras {
		for _, ap := range fr.Approaches {
			fmt.Fprintf(&b, "%-8s %-13s", intra, ap)
			for ni := range fr.Nodes {
				v := fr.Times[ap][ii][ni]
				if math.IsNaN(v) {
					fmt.Fprintf(&b, "%10s", "n/a")
				} else {
					fmt.Fprintf(&b, "%10.3f", v)
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// CSV renders the figure as CSV rows:
// figure,app,inter,intra,approach,nodes,seconds.
func (fr *FigureResult) CSV() string {
	var b strings.Builder
	b.WriteString("figure,app,inter,intra,approach,nodes,seconds\n")
	for ii, intra := range fr.Intras {
		for _, ap := range fr.Approaches {
			for ni, n := range fr.Nodes {
				v := fr.Times[ap][ii][ni]
				val := "NA"
				if !math.IsNaN(v) {
					val = fmt.Sprintf("%.6f", v)
				}
				fmt.Fprintf(&b, "%d,%s,%s,%s,%s,%d,%s\n",
					fr.Figure, fr.App, fr.Inter, intra, ap, n, val)
			}
		}
	}
	return b.String()
}

// Speedup returns MPI+OpenMP time / MPI+MPI time for one cell, the paper's
// comparison direction (>1 means the proposed approach wins). NaN when
// either cell is unavailable.
func (fr *FigureResult) Speedup(intra dls.Technique, nodes int) float64 {
	ii, ni := -1, -1
	for i, t := range fr.Intras {
		if t == intra {
			ii = i
		}
	}
	for i, n := range fr.Nodes {
		if n == nodes {
			ni = i
		}
	}
	if ii < 0 || ni < 0 {
		return math.NaN()
	}
	a, okA := fr.Times[MPIMPI]
	b, okB := fr.Times[MPIOpenMP]
	if !okA || !okB {
		return math.NaN()
	}
	return b[ii][ni] / a[ii][ni]
}

// Efficiency returns the parallel efficiency (ideal time / measured time,
// in (0, 1]) for one cell of the figure, using the figure app's workload at
// the given scale. NaN for unavailable cells.
func (fr *FigureResult) Efficiency(ap Approach, intra dls.Technique, nodes, scale, workersPerNode int) float64 {
	ii, ni := -1, -1
	for i, t := range fr.Intras {
		if t == intra {
			ii = i
		}
	}
	for i, n := range fr.Nodes {
		if n == nodes {
			ni = i
		}
	}
	times, ok := fr.Times[ap]
	if ii < 0 || ni < 0 || !ok {
		return math.NaN()
	}
	v := times[ii][ni]
	if math.IsNaN(v) || v <= 0 {
		return math.NaN()
	}
	return float64(IdealTime(fr.App, scale, nodes, workersPerNode)) / v
}

// EfficiencyTable renders per-cell parallel efficiency (1.00 = perfect),
// the scalability view of the figure.
func (fr *FigureResult) EfficiencyTable(scale, workersPerNode int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d %s — parallel efficiency (ideal/measured)\n", fr.Figure, fr.App)
	fmt.Fprintf(&b, "%-22s", "intra \\ nodes")
	for _, n := range fr.Nodes {
		fmt.Fprintf(&b, "%8d", n)
	}
	b.WriteString("\n")
	for _, intra := range fr.Intras {
		for _, ap := range fr.Approaches {
			fmt.Fprintf(&b, "%-8s %-13s", intra, ap)
			for _, n := range fr.Nodes {
				e := fr.Efficiency(ap, intra, n, scale, workersPerNode)
				if math.IsNaN(e) {
					fmt.Fprintf(&b, "%8s", "n/a")
				} else {
					fmt.Fprintf(&b, "%8.2f", e)
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// IdealTime returns total work / total workers for the figure's app and a
// node count — the lower bound the paper's best configurations approach.
func IdealTime(app App, scale, nodes, workersPerNode int) sim.Time {
	var prof *workload.Profile
	if app == PSIA {
		prof = workload.PSIAProfile(scale)
	} else {
		prof = workload.MandelbrotProfile(scale)
	}
	return prof.Total() / sim.Time(nodes*workersPerNode)
}
