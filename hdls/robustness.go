package hdls

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/dls"
	"repro/internal/core"
)

// RobustnessTechniques is the default inter-node technique set of the
// robustness sweep: the paper's Figure 4–7 first-level techniques plus SS.
var RobustnessTechniques = []dls.Technique{dls.STATIC, dls.SS, dls.GSS, dls.TSS, dls.FAC2}

// RobustnessOptions configures one robustness sweep: a set of inter-node
// techniques executed under one scenario (topology × perturbation ×
// workload), scored by how evenly the nodes finish.
type RobustnessOptions struct {
	// Techniques are the inter-node techniques to compare
	// (default RobustnessTechniques).
	Techniques []dls.Technique
	// Intra is the intra-node technique used in every cell. The zero value
	// (STATIC) is the paper's lowest-overhead second level; cores within a
	// node are homogeneous, so the scenario axes act at the inter level.
	Intra dls.Technique
	// Nodes sizes the machine (default 4).
	Nodes int
	// WorkersPerNode sets each node's worker count (default 16).
	WorkersPerNode int
	// Approach defaults to MPIMPI, the paper's proposed executor.
	Approach Approach
	// App selects the paper workload, as in Config.
	App App
	// Scale divides the workload, as in Config (default 8).
	Scale int
	// Workload, when non-empty, overrides App with a spec string.
	Workload string
	// Seed drives every cell's engine RNG (default 1).
	Seed int64
	// Topology and Perturbation define the scenario; their zero values are
	// the smooth homogeneous paper machine.
	Topology Topology
	// Perturbation is the scenario's perturbation axis.
	Perturbation Perturbation
	// ExtendedRuntime permits TSS/FAC2 intra under the OpenMP approaches.
	ExtendedRuntime bool
	// Repeats replicates every technique cell under consecutive seeds
	// (Seed, Seed+1, …, Seed+Repeats−1); rows then report means over the
	// replicas plus the parallel-time spread. The default 1 reproduces the
	// single-seed sweep exactly.
	Repeats int
	// Parallelism bounds concurrent cells (0 = GOMAXPROCS, as in figures).
	Parallelism int
	// Progress, if non-nil, observes each completed cell (serialized).
	Progress func(cell string)
}

func (o RobustnessOptions) withDefaults() RobustnessOptions {
	if len(o.Techniques) == 0 {
		o.Techniques = RobustnessTechniques
	}
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.WorkersPerNode == 0 {
		o.WorkersPerNode = 16
	}
	if o.Scale == 0 {
		o.Scale = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	return o
}

// RobustnessRow scores one inter-node technique under the sweep's scenario.
// With Repeats > 1 the base fields are means over the seed replicas and the
// spread fields are populated.
type RobustnessRow struct {
	// Technique names the inter-node technique of this row.
	Technique string `json:"technique"`
	// ParallelTime is the paper's metric (seconds of virtual time).
	ParallelTime float64 `json:"parallel_time"`
	// NodeFinishCoV is the coefficient of variation of per-node finish
	// times — the sweep's robustness metric: 0 means every node finished
	// together; large values mean the technique failed to rebalance.
	NodeFinishCoV float64 `json:"node_finish_cov"`
	// LoadImbalance is max/mean − 1 over worker finish times.
	LoadImbalance float64 `json:"load_imbalance"`
	// GlobalChunks counts chunks issued by the global queue.
	GlobalChunks int `json:"global_chunks"`
	// LocalChunks counts sub-chunks issued at the intra-node level.
	LocalChunks int `json:"local_chunks"`
	// Repeats is the number of seed replicas folded into this row
	// (the spread fields below are populated only when it exceeds 1).
	Repeats int `json:"repeats,omitempty"`
	// MinTime is the fastest replica's parallel time.
	MinTime float64 `json:"min_time,omitempty"`
	// MaxTime is the slowest replica's parallel time.
	MaxTime float64 `json:"max_time,omitempty"`
	// TimeStdDev is the replica parallel-time standard deviation.
	TimeStdDev float64 `json:"time_stddev,omitempty"`
}

// RobustnessResult is one completed robustness sweep.
type RobustnessResult struct {
	// Scenario describes the topology and perturbation axes in effect.
	Scenario string `json:"scenario"`
	// Workload names the loop the sweep ran.
	Workload string `json:"workload"`
	// Nodes is the simulated machine size.
	Nodes int `json:"nodes"`
	// Workers is the per-node worker count.
	Workers int `json:"workers_per_node"`
	// Approach names the executor every cell used.
	Approach string `json:"approach"`
	// Intra names the intra-node technique every cell used.
	Intra string `json:"intra"`
	// Rows holds one scored row per inter-node technique, ranked most
	// robust (lowest NodeFinishCoV) first.
	Rows []RobustnessRow `json:"rows"`
}

// robustAcc folds one technique's replica summaries. The sweep keeps one
// compact Summary (a few scalars) per cell so the fold can run in cell
// order — deterministic at any parallelism — and nothing per-worker or
// per-node is ever retained.
type robustAcc struct {
	n                  int
	sumT, sumSqT       float64
	minT, maxT         float64
	sumCoV, sumImb     float64
	sumGlobal, sumLoca int
}

func (a *robustAcc) add(s core.Summary) {
	t := float64(s.ParallelTime)
	if a.n == 0 || t < a.minT {
		a.minT = t
	}
	if a.n == 0 || t > a.maxT {
		a.maxT = t
	}
	a.n++
	a.sumT += t
	a.sumSqT += t * t
	a.sumCoV += s.NodeFinishCoV
	a.sumImb += s.LoadImbalance
	a.sumGlobal += s.GlobalChunks
	a.sumLoca += s.LocalChunks
}

func (a *robustAcc) row(tech dls.Technique, repeats int) RobustnessRow {
	n := float64(a.n)
	row := RobustnessRow{
		Technique:     tech.String(),
		ParallelTime:  a.sumT / n,
		NodeFinishCoV: a.sumCoV / n,
		LoadImbalance: a.sumImb / n,
		GlobalChunks:  a.sumGlobal / a.n,
		LocalChunks:   a.sumLoca / a.n,
	}
	if repeats > 1 {
		row.Repeats = a.n
		row.MinTime = a.minT
		row.MaxTime = a.maxT
		if v := a.sumSqT/n - (a.sumT/n)*(a.sumT/n); v > 0 {
			row.TimeStdDev = math.Sqrt(v)
		}
	}
	return row
}

// RunRobustness executes the robustness sweep: every technique (× seed
// replica, with Repeats > 1) runs the identical scenario, and the resulting
// table ranks techniques by how well they absorb heterogeneity and
// perturbations. Cells run on a bounded worker pool and aggregate
// incrementally via compact summaries, so thousand-cell sweeps run flat in
// memory; results land in technique order regardless of completion order.
func RunRobustness(opt RobustnessOptions) (*RobustnessResult, error) {
	o := opt.withDefaults()
	rr := &RobustnessResult{
		Scenario: scenarioName(o),
		Workload: o.Workload,
		Nodes:    o.Nodes,
		Workers:  o.WorkersPerNode,
		Approach: o.Approach.String(),
		Intra:    o.Intra.String(),
		Rows:     make([]RobustnessRow, len(o.Techniques)),
	}
	if rr.Workload == "" {
		rr.Workload = o.App.String()
	}
	cells := len(o.Techniques) * o.Repeats
	// Per-cell compact summaries (scalars only — O(cells) in the number of
	// techniques × replicas, independent of machine or loop size); the fold
	// below runs in cell-index order so the floating-point reductions are
	// identical at any Parallelism.
	summaries := make([]core.Summary, cells)
	var (
		next    atomic.Int64
		mu      sync.Mutex
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < parallelismOf(o.Parallelism, cells); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cells {
					return
				}
				ti, rep := i%len(o.Techniques), i/len(o.Techniques)
				tech := o.Techniques[ti]
				mu.Lock()
				stop := firstEr != nil
				mu.Unlock()
				if stop {
					return
				}
				s, err := RunSummary(Config{
					App: o.App, Nodes: o.Nodes, WorkersPerNode: o.WorkersPerNode,
					Inter: tech, Intra: o.Intra, Approach: o.Approach,
					Scale: o.Scale, Seed: o.Seed + int64(rep),
					Workload: o.Workload, Topology: o.Topology, Perturbation: o.Perturbation,
					ExtendedRuntime: o.ExtendedRuntime,
				})
				mu.Lock()
				if err != nil {
					if firstEr == nil {
						firstEr = fmt.Errorf("robustness %v seed %d: %w", tech, o.Seed+int64(rep), err)
					}
					mu.Unlock()
					return
				}
				summaries[i] = s
				if o.Progress != nil {
					o.Progress(fmt.Sprintf("robust %v seed %d %s", tech, o.Seed+int64(rep), rr.Scenario))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	accs := make([]robustAcc, len(o.Techniques))
	for i, s := range summaries {
		accs[i%len(o.Techniques)].add(s)
	}
	for i, tech := range o.Techniques {
		rr.Rows[i] = accs[i].row(tech, o.Repeats)
	}
	return rr, nil
}

// parallelismOf bounds the sweep worker pool: an explicit Parallelism wins,
// otherwise the host's cores, never more workers than cells.
func parallelismOf(p, cells int) int {
	if cells < 1 {
		return 1
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > cells {
		p = cells
	}
	return p
}

func scenarioName(o RobustnessOptions) string {
	parts := []string{o.Topology.String()}
	if o.Perturbation.Enabled() {
		parts = append(parts, o.Perturbation.String())
	}
	return strings.Join(parts, " + ")
}

// Table renders the sweep as a text table ranking techniques under the
// scenario.
func (rr *RobustnessResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness sweep — %s, workload %s, %d nodes × %d workers, %s (intra %s)\n",
		rr.Scenario, rr.Workload, rr.Nodes, rr.Workers, rr.Approach, rr.Intra)
	fmt.Fprintf(&b, "%-8s %14s %16s %14s %8s %8s\n",
		"inter", "parallel s", "node-finish CoV", "imbalance", "gchunks", "lchunks")
	for _, r := range rr.Rows {
		fmt.Fprintf(&b, "%-8s %14.6f %16.4f %14.4f %8d %8d\n",
			r.Technique, r.ParallelTime, r.NodeFinishCoV, r.LoadImbalance,
			r.GlobalChunks, r.LocalChunks)
	}
	return b.String()
}

// CSV renders the sweep as CSV rows.
func (rr *RobustnessResult) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,workload,nodes,workers,approach,intra,inter,parallel_s,node_finish_cov,imbalance,global_chunks,local_chunks\n")
	for _, r := range rr.Rows {
		fmt.Fprintf(&b, "%q,%q,%d,%d,%s,%s,%s,%.6f,%.4f,%.4f,%d,%d\n",
			rr.Scenario, rr.Workload, rr.Nodes, rr.Workers, rr.Approach, rr.Intra,
			r.Technique, r.ParallelTime, r.NodeFinishCoV, r.LoadImbalance,
			r.GlobalChunks, r.LocalChunks)
	}
	return b.String()
}
