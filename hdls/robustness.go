package hdls

import (
	"fmt"
	"strings"
	"sync"

	"repro/dls"
	"repro/internal/stats"
)

// RobustnessTechniques is the default inter-node technique set of the
// robustness sweep: the paper's Figure 4–7 first-level techniques plus SS.
var RobustnessTechniques = []dls.Technique{dls.STATIC, dls.SS, dls.GSS, dls.TSS, dls.FAC2}

// RobustnessOptions configures one robustness sweep: a set of inter-node
// techniques executed under one scenario (topology × perturbation ×
// workload), scored by how evenly the nodes finish.
type RobustnessOptions struct {
	// Techniques are the inter-node techniques to compare
	// (default RobustnessTechniques).
	Techniques []dls.Technique
	// Intra is the intra-node technique used in every cell. The zero value
	// (STATIC) is the paper's lowest-overhead second level; cores within a
	// node are homogeneous, so the scenario axes act at the inter level.
	Intra dls.Technique
	// Nodes (default 4) and WorkersPerNode (default 16) size the machine.
	Nodes          int
	WorkersPerNode int
	// Approach defaults to MPIMPI, the paper's proposed executor.
	Approach Approach
	// App / Scale / Workload select the loop as in Config.
	App      App
	Scale    int
	Workload string
	Seed     int64
	// Topology and Perturbation define the scenario; their zero values are
	// the smooth homogeneous paper machine.
	Topology     Topology
	Perturbation Perturbation
	// ExtendedRuntime permits TSS/FAC2 intra under the OpenMP approaches.
	ExtendedRuntime bool
	// Parallelism bounds concurrent cells (0 = GOMAXPROCS, as in figures).
	Parallelism int
	// Progress, if non-nil, observes each completed cell (serialized).
	Progress func(cell string)
}

func (o RobustnessOptions) withDefaults() RobustnessOptions {
	if len(o.Techniques) == 0 {
		o.Techniques = RobustnessTechniques
	}
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.WorkersPerNode == 0 {
		o.WorkersPerNode = 16
	}
	if o.Scale == 0 {
		o.Scale = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RobustnessRow scores one inter-node technique under the sweep's scenario.
type RobustnessRow struct {
	Technique string `json:"technique"`
	// ParallelTime is the paper's metric (seconds of virtual time).
	ParallelTime float64 `json:"parallel_time"`
	// NodeFinishCoV is the coefficient of variation of per-node finish
	// times — the sweep's robustness metric: 0 means every node finished
	// together; large values mean the technique failed to rebalance.
	NodeFinishCoV float64 `json:"node_finish_cov"`
	// LoadImbalance is max/mean − 1 over worker finish times.
	LoadImbalance float64 `json:"load_imbalance"`
	GlobalChunks  int     `json:"global_chunks"`
	LocalChunks   int     `json:"local_chunks"`
}

// RobustnessResult is one completed robustness sweep.
type RobustnessResult struct {
	Scenario string          `json:"scenario"`
	Workload string          `json:"workload"`
	Nodes    int             `json:"nodes"`
	Workers  int             `json:"workers_per_node"`
	Approach string          `json:"approach"`
	Intra    string          `json:"intra"`
	Rows     []RobustnessRow `json:"rows"`
}

// RunRobustness executes the robustness sweep: every technique runs the
// identical scenario, and the resulting table ranks them by how well they
// absorb heterogeneity and perturbations. Cells run concurrently; results
// land in technique order regardless of completion order.
func RunRobustness(opt RobustnessOptions) (*RobustnessResult, error) {
	o := opt.withDefaults()
	rr := &RobustnessResult{
		Scenario: scenarioName(o),
		Workload: o.Workload,
		Nodes:    o.Nodes,
		Workers:  o.WorkersPerNode,
		Approach: o.Approach.String(),
		Intra:    o.Intra.String(),
		Rows:     make([]RobustnessRow, len(o.Techniques)),
	}
	if rr.Workload == "" {
		rr.Workload = o.App.String()
	}
	var (
		mu      sync.Mutex
		firstEr error
		wg      sync.WaitGroup
	)
	sem := make(chan struct{}, parallelismOf(o.Parallelism, len(o.Techniques)))
	for i, tech := range o.Techniques {
		i, tech := i, tech
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			res, err := Run(Config{
				App: o.App, Nodes: o.Nodes, WorkersPerNode: o.WorkersPerNode,
				Inter: tech, Intra: o.Intra, Approach: o.Approach,
				Scale: o.Scale, Seed: o.Seed,
				Workload: o.Workload, Topology: o.Topology, Perturbation: o.Perturbation,
				ExtendedRuntime: o.ExtendedRuntime,
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstEr == nil {
					firstEr = fmt.Errorf("robustness %v: %w", tech, err)
				}
				return
			}
			nf := make([]float64, len(res.NodeFinish))
			for j, f := range res.NodeFinish {
				nf[j] = float64(f)
			}
			rr.Rows[i] = RobustnessRow{
				Technique:     tech.String(),
				ParallelTime:  float64(res.ParallelTime),
				NodeFinishCoV: stats.CoV(nf),
				LoadImbalance: res.LoadImbalance,
				GlobalChunks:  res.GlobalChunks,
				LocalChunks:   res.LocalChunks,
			}
			if o.Progress != nil {
				o.Progress(fmt.Sprintf("robust %v %s", tech, rr.Scenario))
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return rr, nil
}

func parallelismOf(p, cells int) int {
	if p <= 0 || p > cells {
		if cells < 1 {
			return 1
		}
		return cells
	}
	return p
}

func scenarioName(o RobustnessOptions) string {
	parts := []string{o.Topology.String()}
	if o.Perturbation.Enabled() {
		parts = append(parts, o.Perturbation.String())
	}
	return strings.Join(parts, " + ")
}

// Table renders the sweep as a text table ranking techniques under the
// scenario.
func (rr *RobustnessResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness sweep — %s, workload %s, %d nodes × %d workers, %s (intra %s)\n",
		rr.Scenario, rr.Workload, rr.Nodes, rr.Workers, rr.Approach, rr.Intra)
	fmt.Fprintf(&b, "%-8s %14s %16s %14s %8s %8s\n",
		"inter", "parallel s", "node-finish CoV", "imbalance", "gchunks", "lchunks")
	for _, r := range rr.Rows {
		fmt.Fprintf(&b, "%-8s %14.6f %16.4f %14.4f %8d %8d\n",
			r.Technique, r.ParallelTime, r.NodeFinishCoV, r.LoadImbalance,
			r.GlobalChunks, r.LocalChunks)
	}
	return b.String()
}

// CSV renders the sweep as CSV rows.
func (rr *RobustnessResult) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,workload,nodes,workers,approach,intra,inter,parallel_s,node_finish_cov,imbalance,global_chunks,local_chunks\n")
	for _, r := range rr.Rows {
		fmt.Fprintf(&b, "%q,%q,%d,%d,%s,%s,%s,%.6f,%.4f,%.4f,%d,%d\n",
			rr.Scenario, rr.Workload, rr.Nodes, rr.Workers, rr.Approach, rr.Intra,
			r.Technique, r.ParallelTime, r.NodeFinishCoV, r.LoadImbalance,
			r.GlobalChunks, r.LocalChunks)
	}
	return b.String()
}
