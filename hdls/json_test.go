package hdls_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/dls"
	"repro/hdls"
	"repro/internal/workload"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := hdls.Config{
		App: hdls.PSIA, Nodes: 8, WorkersPerNode: 32,
		Inter: dls.FAC2, Intra: dls.SS, Approach: hdls.MPIOpenMP,
		Scale: 16, Seed: 42, Workload: "gaussian:n=1024,cv=0.3",
		Topology:     hdls.Topology{NodeSpeeds: []float64{1, 0.5}, NodeCores: []int{16, 64}},
		Perturbation: hdls.Perturbation{NoiseCV: 0.1, SlowdownRate: 2, SlowdownFactor: 3, SlowdownDuration: 0.01},
		NoiseCV:      0.05, ExtendedRuntime: true,
	}
	buf, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"app":"PSIA"`, `"inter":"FAC2"`, `"intra":"SS"`,
		`"approach":"MPI+OpenMP"`, `"node_speeds":[1,0.5]`, `"slowdown_rate":2`} {
		if !strings.Contains(string(buf), want) {
			t.Errorf("marshaled config missing %s:\n%s", want, buf)
		}
	}
	var back hdls.Config
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hash() != cfg.Hash() {
		t.Fatalf("round trip changed the canonical hash\n in: %s\nout: %s", buf, mustJSON(t, back))
	}

	// The zero config stays small: defaults are omitted, enums are named.
	zero, err := json.Marshal(hdls.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"app":"Mandelbrot","inter":"STATIC","intra":"STATIC","approach":"MPI+MPI"}`
	if string(zero) != want {
		t.Errorf("zero config marshals to %s, want %s", zero, want)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestCanonicalHash(t *testing.T) {
	// Spelled-out defaults and the zero config are the same experiment.
	explicit := hdls.Config{Nodes: 4, WorkersPerNode: 16, Scale: 8, Seed: 1}
	if explicit.Hash() != (hdls.Config{}).Hash() {
		t.Error("defaulted config should hash like the zero config")
	}
	// CollectTrace cannot change a summary, so it cannot change the hash.
	if (hdls.Config{CollectTrace: true}).Hash() != (hdls.Config{}).Hash() {
		t.Error("CollectTrace should not affect the hash")
	}
	// Every result-affecting axis must move the hash.
	base := hdls.Config{}
	for name, c := range map[string]hdls.Config{
		"seed":      {Seed: 2},
		"nodes":     {Nodes: 8},
		"inter":     {Inter: dls.GSS},
		"approach":  {Approach: hdls.MPIOpenMP},
		"workload":  {Workload: "constant:n=64"},
		"topology":  {Topology: hdls.Topology{NodeSpeeds: []float64{1, 0.5}}},
		"perturb":   {Perturbation: hdls.Perturbation{NoiseCV: 0.2}},
		"noise":     {NoiseCV: 0.1},
		"extended":  {ExtendedRuntime: true},
		"intrachng": {Intra: dls.SS},
	} {
		if c.Hash() == base.Hash() {
			t.Errorf("%s: config change did not change the hash", name)
		}
	}
	// Distinct in-memory profiles must hash apart even though JSON drops them.
	p1 := hdls.Config{Profile: workload.Constant(64, 1e-6)}
	p2 := hdls.Config{Profile: workload.Constant(64, 2e-6)}
	if p1.Hash() == p2.Hash() {
		t.Error("distinct profiles should hash apart")
	}
	if p1.Hash() == base.Hash() {
		t.Error("a profile override should hash apart from the app default")
	}
}

func TestValidateMatchesRun(t *testing.T) {
	bad := []hdls.Config{
		{Nodes: -1},
		{Workload: "nosuchkind:n=8"},
		{Inter: dls.AWFB},                          // weighted/adaptive unsupported at the inter level
		{Intra: dls.TSS, Approach: hdls.MPIOpenMP}, // stock runtime limitation
	}
	for i, cfg := range bad {
		verr := cfg.Validate()
		if verr == nil {
			t.Errorf("config %d: Validate passed, want error", i)
			continue
		}
		if _, rerr := hdls.RunSummary(cfg); rerr == nil {
			t.Errorf("config %d: Validate failed (%v) but RunSummary passed", i, verr)
		}
	}
	good := hdls.Config{Nodes: 2, WorkersPerNode: 4, Workload: "constant:n=128"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
