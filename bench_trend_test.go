// Bench-trend smoke, rewired through the machine-class perf gates
// (internal/checks, DESIGN.md §14). The old form regenerated the `make
// bench` sweep inline and compared a raw percentage against the latest
// BENCH_*.json; it also silently passed when BENCH_TREND was unset. This
// form always runs the quick machine class against an in-process daemon —
// the no-daemon fallback executor, so `go test ./...` needs no hdlsd
// binary — and structural failures (executor errors, replay divergence)
// fail unconditionally. Goal verdicts stay opt-in: wall-clock floors are
// only meaningful on a quiet machine, so without BENCH_TREND=1 they are
// logged report-only, and with it a violated goal fails naming the check:
//
//	check quick/fig4-grid: FAIL: cells_per_second 61.2 < goal 100
//
// The subprocess-daemon version of the same gate is `make check`
// (cmd/hdlscheck), which CI runs with goals enforced.
package repro_test

import (
	"os"
	"testing"

	"repro/internal/checks"
)

func TestBenchTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-class run is wall-clock bound; skipped under -short")
	}
	enforce := os.Getenv("BENCH_TREND") != ""

	tree, err := checks.Load("checks")
	if err != nil {
		t.Fatal(err)
	}
	class, err := tree.Class("quick")
	if err != nil {
		t.Fatal(err)
	}

	host := checks.Calibrate()
	t.Logf("host: %d cores, calib %.0f Mops/s, %s", host.Cores, host.CalibMops, host.GoVersion)

	runner := &checks.Runner{Exec: &checks.InProcessExecutor{}, Host: host}
	for _, res := range runner.RunClass(class) {
		t.Log(res.Summary())
		switch {
		case res.Err != nil:
			// Structural: the daemon errored or a warm pass diverged from the
			// cold bytes. Never load-dependent, so never report-only.
			t.Errorf("%s", res.Summary())
		case res.Failed():
			if enforce {
				t.Errorf("%s", res.Summary())
			} else {
				t.Logf("goal violation (report-only; set BENCH_TREND=1 to enforce)")
			}
		}
		for k, v := range res.Measured {
			t.Logf("  %s = %g", k, v)
		}
	}
}
