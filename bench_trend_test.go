// Bench-trend smoke: regenerates the `make bench` figure sweep and fails
// when host throughput (cells/second) regresses more than 25% against the
// latest committed BENCH_*.json snapshot. The sweep replays the snapshot's
// own node axis — 2,4,8,16 since BENCH_2026-07-28c — and the 8n/16n
// large-P rows dominate its wall time, so large-P regressions trip the
// gate through the aggregate. Wall-clock comparisons are only meaningful
// on a quiet machine, so the test is opt-in: set BENCH_TREND=1 (the CI
// perf job does). Snapshots are subset-unmarshaled, so extra keys merged
// by other tools — e.g. cmd/cachebench's "serve_cache" cold/warm/disk
// rows — are tolerated and ignored by the trend gate.
package repro_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/hdls"
	"repro/internal/cliutil"
)

type benchTrendSnapshot struct {
	Scale       int     `json:"scale"`
	Nodes       []int   `json:"nodes"`
	Figures     []int   `json:"figures"`
	Cells       int     `json:"cells"`
	CellsPerSec float64 `json:"cells_per_second"`
	CalibScore  float64 `json:"calib_score"`
}

// latestBenchSnapshot returns the lexicographically newest committed
// figure-sweep BENCH_*.json (names embed ISO dates, so lexical order is
// date order). Non-figure snapshots (e.g. robustness-mode -json files)
// are skipped rather than disabling the check.
func latestBenchSnapshot(t *testing.T) (string, benchTrendSnapshot) {
	t.Helper()
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Skipf("no committed BENCH_*.json snapshot (%v)", err)
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		name := matches[i]
		buf, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		var snap benchTrendSnapshot
		if err := json.Unmarshal(buf, &snap); err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		if snap.CellsPerSec > 0 && len(snap.Figures) > 0 {
			return name, snap
		}
	}
	t.Skip("no figure-sweep snapshot among BENCH_*.json")
	return "", benchTrendSnapshot{}
}

func TestBenchTrend(t *testing.T) {
	if os.Getenv("BENCH_TREND") == "" {
		t.Skip("set BENCH_TREND=1 to compare against the committed snapshot (wall-clock sensitive)")
	}
	name, snap := latestBenchSnapshot(t)

	cells := 0
	start := time.Now()
	for _, fig := range snap.Figures {
		for _, app := range []hdls.App{hdls.Mandelbrot, hdls.PSIA} {
			fr, err := hdls.RunFigure(fig, app, hdls.FigureOptions{
				Scale: snap.Scale, Nodes: snap.Nodes,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, times := range fr.Times {
				for _, row := range times {
					for _, v := range row {
						if v == v { // not NaN
							cells++
						}
					}
				}
			}
		}
	}
	wall := time.Since(start).Seconds()
	got := float64(cells) / wall
	if cells != snap.Cells {
		t.Logf("cell count %d differs from snapshot's %d (sweep shape changed?)", cells, snap.Cells)
	}
	want := snap.CellsPerSec
	// When the snapshot carries a calibration score, compare load-normalized
	// throughput: cells/second scaled by the ratio of the host's integer
	// throughput now vs at snapshot time. Absolute wall numbers swing with
	// neighbour load and host class; the normalized ratio does not.
	if snap.CalibScore > 0 {
		calib := cliutil.CalibScore()
		t.Logf("calibration: %.0f Mops/s now vs %.0f at snapshot time", calib, snap.CalibScore)
		want = snap.CellsPerSec * calib / snap.CalibScore
	}
	t.Logf("bench trend: %.1f cells/s vs %s's %.1f (load-adjusted %.1f)", got, name, snap.CellsPerSec, want)
	if got < 0.75*want {
		t.Fatalf("throughput regression: %.1f cells/s is more than 25%% below %s's load-adjusted %.1f",
			got, name, want)
	}
}
