package repro_test

// goldenWant freezes the outcomes of the golden cases as produced by the
// original kernel (captured with -print-golden before the hot-path rewrite).
// Regenerate only if the *model* changes deliberately; kernel-only changes
// must keep these bit-identical.
var goldenWant = map[string]goldenCase{
	"mpimpi-gss-ss-1node": {
		name:         "mpimpi-gss-ss-1node",
		parallelTime: "0.048810732923088795",
		globalChunks: 74, localChunks: 4096,
		lockAtt: 39328, lockAcq: 4112,
		barrierWait: "0", finishSum: "0.7772315981240947",
	},
	"mpimpi-gss-static-2node": {
		name:         "mpimpi-gss-static-2node",
		parallelTime: "0.077112672362368836",
		globalChunks: 166, localChunks: 2043,
		lockAtt: 8673, lockAcq: 2075,
		barrierWait: "0", finishSum: "2.4588526264336124",
	},
	"mpimpi-fac2-gss-4node": {
		name:         "mpimpi-fac2-gss-4node",
		parallelTime: "0.050361601839098435",
		globalChunks: 576, localChunks: 7104,
		lockAtt: 52560, lockAcq: 7168,
		barrierWait: "0", finishSum: "3.1928152103464704",
	},
	"mpimpi-tss-fac2-noise": {
		name:         "mpimpi-tss-fac2-noise",
		parallelTime: "0.093805700008590412",
		globalChunks: 127, localChunks: 8021,
		lockAtt: 11055, lockAcq: 8053,
		barrierWait: "0", finishSum: "2.9984546793427493",
	},
	"mpiopenmp-gss-static-2node": {
		name:         "mpiopenmp-gss-static-2node",
		parallelTime: "0.24475319193262507",
		globalChunks: 15, localChunks: 176,
		lockAtt: 0, lockAcq: 0,
		barrierWait: "4.930452344847736", finishSum: "4.5124649501978746",
	},
	"nowait-gss-ss-2node": {
		name:         "nowait-gss-ss-2node",
		parallelTime: "0.073272808464788231",
		globalChunks: 15, localChunks: 16384,
		lockAtt: 0, lockAcq: 0,
		barrierWait: "0", finishSum: "2.3444383375041795",
	},
	"mpimpi-hetero-knl-ss": {
		name:         "mpimpi-hetero-knl-ss",
		parallelTime: "0.20067206196388282",
		globalChunks: 324, localChunks: 2048,
		lockAtt: 170187, lockAcq: 2176,
		barrierWait: "0", finishSum: "23.379230375282347",
	},
}
