// Scenario goldens and determinism tests for the scenario engine:
// heterogeneous topologies (per-node speeds and core counts) and the
// perturbation models (noise, transient slowdowns, background load).
// They freeze one small heterogeneous and one perturbed experiment next to
// the kernel goldens, and pin the replay-determinism contract: identical
// Configs produce byte-identical Results.
package repro_test

import (
	"flag"
	"fmt"
	"testing"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perturb"
	"repro/internal/sim"
	"repro/internal/workload"
)

var printScenarioGolden = flag.Bool("print-scenario-golden", false,
	"print current scenario golden values instead of asserting")

// scenarioCases returns the frozen scenario experiments. The heterogeneous
// case mixes a 16-core full-speed node with an 8-core half-speed node (so
// both the per-node worker counts and the speed scaling are live); the
// perturbed case layers noise, transient slowdowns, and background load on
// the paper machine.
func scenarioCases() []goldenCase {
	uniform := workload.Uniform(2048, 15e-6, 45e-6, 9)
	return []goldenCase{
		{
			name: "scenario-hetero-2node-gss-static",
			cfg: func() core.Config {
				cl := cluster.MiniHPC(2)
				cl.NodeCores = []int{16, 8}
				cl.NodeSpeed = []float64{1, 0.5}
				return core.Config{
					Cluster: cl, WorkersPerNode: 16,
					Inter: dls.GSS, Intra: dls.STATIC,
					Workload: uniform, Approach: core.MPIMPI, Seed: 1,
				}
			},
		},
		{
			name: "scenario-perturbed-2node-fac2-ss",
			cfg: func() core.Config {
				return core.Config{
					Cluster: cluster.MiniHPC(2), WorkersPerNode: 16,
					Inter: dls.FAC2, Intra: dls.SS,
					Workload: uniform, Approach: core.MPIMPI, Seed: 3,
					Perturb: perturb.Config{
						NoiseCV:          0.1,
						SlowdownRate:     50,
						SlowdownFactor:   2.5,
						SlowdownDuration: 1e-3 * sim.Second,
						BackgroundLoad:   []float64{0, 0.2},
						Seed:             7,
					},
				}
			},
		},
		{
			name: "scenario-mixed-knl-openmp",
			cfg: func() core.Config {
				cl := cluster.MiniHPCMixed(2)
				return core.Config{
					Cluster: cl, WorkersPerNode: 64,
					Inter: dls.GSS, Intra: dls.GSS,
					Workload: uniform, Approach: core.MPIOpenMP, Seed: 1,
				}
			},
		},
	}
}

func TestScenarioGoldenEquivalence(t *testing.T) {
	for _, c := range scenarioCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := observe(t, c)
			if *printScenarioGolden {
				fmt.Printf("GOLDEN\t%s\t%s\t%d\t%d\t%d\t%d\t%s\t%s\n",
					got.name, got.parallelTime, got.globalChunks, got.localChunks,
					got.lockAtt, got.lockAcq, got.barrierWait, got.finishSum)
				return
			}
			want, ok := scenarioGoldenWant[c.name]
			if !ok {
				t.Fatalf("no scenario golden entry for %s (run with -print-scenario-golden)", c.name)
			}
			got.cfg = nil
			if got.name != want.name || got.parallelTime != want.parallelTime ||
				got.globalChunks != want.globalChunks || got.localChunks != want.localChunks ||
				got.lockAtt != want.lockAtt || got.lockAcq != want.lockAcq ||
				got.barrierWait != want.barrierWait || got.finishSum != want.finishSum {
				t.Fatalf("scenario output diverged from frozen golden:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestScenarioDeterminism pins the replay contract of the new Config axes:
// two runs with an identical Config — including Topology, Perturbation and
// synthetic Workload state — must produce byte-identical Results, per-worker
// trajectories included.
func TestScenarioDeterminism(t *testing.T) {
	for _, c := range scenarioCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			a, err := core.Run(c.cfg())
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.Run(c.cfg())
			if err != nil {
				t.Fatal(err)
			}
			fa := fmt.Sprintf("%.17g %v %v %v %d %d %d %d %v %v",
				float64(a.ParallelTime), a.WorkerFinish, a.WorkerCompute, a.NodeFinish,
				a.GlobalChunks, a.LocalChunks, a.LockAttempts, a.LockAcquisitions,
				a.NodeWorkers, a.LoadImbalance)
			fb := fmt.Sprintf("%.17g %v %v %v %d %d %d %d %v %v",
				float64(b.ParallelTime), b.WorkerFinish, b.WorkerCompute, b.NodeFinish,
				b.GlobalChunks, b.LocalChunks, b.LockAttempts, b.LockAcquisitions,
				b.NodeWorkers, b.LoadImbalance)
			if fa != fb {
				t.Fatalf("two identical runs diverged:\n run1 %s\n run2 %s", fa, fb)
			}
		})
	}
}

// TestPerturbationReplayIndependence verifies the perturb package's
// determinism contract end to end: the slowdown intervals a node
// experiences depend only on (perturb.Config, node), not on which
// technique consumes the machine — so changing the schedule does not
// reshuffle the scenario under comparison.
func TestPerturbationReplayIndependence(t *testing.T) {
	cfg := perturb.Config{
		SlowdownRate: 20, SlowdownFactor: 2, SlowdownDuration: 2e-3 * sim.Second, Seed: 5,
	}
	a := perturb.MustNew(cfg, 4)
	b := perturb.MustNew(cfg, 4)
	// Query a and b in different orders and at different times.
	for i := 0; i < 2000; i++ {
		a.Factor(i%4, sim.Time(float64(i)*1e-4))
	}
	for i := 1999; i >= 0; i-- {
		b.Factor(3-i%4, sim.Time(float64(i)*2e-4))
	}
	for node := 0; node < 4; node++ {
		ia := a.Intervals(node)
		ib := b.Intervals(node)
		m := len(ia)
		if len(ib) < m {
			m = len(ib)
		}
		if m == 0 {
			t.Fatalf("node %d: no slowdown intervals generated", node)
		}
		for i := 0; i < m; i++ {
			if ia[i] != ib[i] {
				t.Fatalf("node %d interval %d differs across query orders: %v vs %v",
					node, i, ia[i], ib[i])
			}
		}
	}
}
