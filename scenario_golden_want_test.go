package repro_test

// scenarioGoldenWant freezes the scenario-engine golden cases (captured
// with -print-scenario-golden at introduction). Regenerate only if the
// scenario *model* changes deliberately; refactors must keep these
// bit-identical.
var scenarioGoldenWant = map[string]goldenCase{
	"scenario-hetero-2node-gss-static": {
		name:         "scenario-hetero-2node-gss-static",
		parallelTime: "0.0048596456989908219",
		globalChunks: 89, localChunks: 786,
		lockAtt: 3000, lockAcq: 810,
		barrierWait: "0", finishSum: "0.11231537697218416",
	},
	"scenario-perturbed-2node-fac2-ss": {
		name:         "scenario-perturbed-2node-fac2-ss",
		parallelTime: "0.012386876726284451",
		globalChunks: 224, localChunks: 2048,
		lockAtt: 19135, lockAcq: 2080,
		barrierWait: "0", finishSum: "0.3794039125083748",
	},
	"scenario-mixed-knl-openmp": {
		name:         "scenario-mixed-knl-openmp",
		parallelTime: "0.0020476558879315991",
		globalChunks: 12, localChunks: 604,
		lockAtt: 0, lockAcq: 0,
		barrierWait: "0.044713360462813941", finishSum: "0.11699701101597589",
	},
}
