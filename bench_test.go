// Benchmarks regenerating the paper's evaluation. One benchmark per figure
// panel (Figures 4–7 × {Mandelbrot, PSIA}) plus the Figure 2/3 barrier
// illustration and ablation benches for the design knobs DESIGN.md calls
// out (poll interval, queue capacity, nowait, extended runtime).
//
// Each figure bench runs the full sweep of its panel at a reduced scale
// (per-iteration granularity — and therefore every ratio — is preserved;
// see workload docs) and prints the series once in the paper's layout.
// Sweep cells execute on the host-core worker pool, so ns/op reflects the
// parallel sweep. Regenerate the full-scale numbers with:
// go run ./cmd/hdlsweep -scale 1. `make bench` records a BENCH_<date>.json
// perf snapshot (host throughput + cell values); kernel-level costs are
// isolated by the BenchmarkKernel* microbenchmarks in internal/sim.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/dls"
	"repro/hdls"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchScale keeps figure benches interactive; cmd/hdlsweep does full size.
const benchScale = 64

var benchNodes = []int{2, 4}

var printOnce sync.Map

func printFigureOnce(b *testing.B, key string, fr *hdls.FigureResult) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("\n%s", fr.Table())
	}
}

func benchFigure(b *testing.B, figure int, app hdls.App) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr, err := hdls.RunFigure(figure, app, hdls.FigureOptions{
			Scale: benchScale,
			Nodes: benchNodes,
		})
		if err != nil {
			b.Fatal(err)
		}
		printFigureOnce(b, fmt.Sprintf("fig%d-%s", figure, app), fr)
	}
}

// Figure 4: STATIC at the inter-node level.
func BenchmarkFigure4Mandelbrot(b *testing.B) { benchFigure(b, 4, hdls.Mandelbrot) }
func BenchmarkFigure4PSIA(b *testing.B)       { benchFigure(b, 4, hdls.PSIA) }

// Figure 5: GSS at the inter-node level (the paper's headline numbers).
func BenchmarkFigure5Mandelbrot(b *testing.B) { benchFigure(b, 5, hdls.Mandelbrot) }
func BenchmarkFigure5PSIA(b *testing.B)       { benchFigure(b, 5, hdls.PSIA) }

// Figure 6: TSS at the inter-node level.
func BenchmarkFigure6Mandelbrot(b *testing.B) { benchFigure(b, 6, hdls.Mandelbrot) }
func BenchmarkFigure6PSIA(b *testing.B)       { benchFigure(b, 6, hdls.PSIA) }

// Figure 7: FAC2 at the inter-node level.
func BenchmarkFigure7Mandelbrot(b *testing.B) { benchFigure(b, 7, hdls.Mandelbrot) }
func BenchmarkFigure7PSIA(b *testing.B)       { benchFigure(b, 7, hdls.PSIA) }

// BenchmarkFigure2BarrierOverhead quantifies the implicit-barrier idle time
// of Figure 2: one node, STATIC intra, spiky workload — the accumulated
// barrier wait is the grey area of the paper's illustration.
func BenchmarkFigure2BarrierOverhead(b *testing.B) {
	prof := workload.Bimodal(2048, 50e-6, 2e-3, 0.1, 7)
	var barrier sim.Time
	for i := 0; i < b.N; i++ {
		res, err := hdls.Run(hdls.Config{
			Profile: prof, Nodes: 1, WorkersPerNode: 16,
			Inter: dls.GSS, Intra: dls.STATIC, Approach: hdls.MPIOpenMP,
		})
		if err != nil {
			b.Fatal(err)
		}
		barrier = res.BarrierWait
	}
	b.ReportMetric(float64(barrier), "barrier-s")
}

// BenchmarkFigure3NoBarrier is the companion measurement: the same loop
// under MPI+MPI has zero barrier time and a shorter makespan (t'end < tend).
func BenchmarkFigure3NoBarrier(b *testing.B) {
	prof := workload.Bimodal(2048, 50e-6, 2e-3, 0.1, 7)
	var makespan sim.Time
	for i := 0; i < b.N; i++ {
		res, err := hdls.Run(hdls.Config{
			Profile: prof, Nodes: 1, WorkersPerNode: 16,
			Inter: dls.GSS, Intra: dls.STATIC, Approach: hdls.MPIMPI,
		})
		if err != nil {
			b.Fatal(err)
		}
		makespan = res.ParallelTime
	}
	b.ReportMetric(float64(makespan), "virtual-s")
}

// --- Ablations ---------------------------------------------------------

// ablationConfig builds the SS-intra stress configuration used by the lock
// ablations: fine-grained iterations on one 16-rank node.
func ablationConfig(prof *workload.Profile) core.Config {
	return core.Config{
		Cluster:        cluster.MiniHPC(1),
		WorkersPerNode: 16,
		Inter:          dls.GSS,
		Intra:          dls.SS,
		Workload:       prof,
		Approach:       core.MPIMPI,
		Seed:           1,
	}
}

// BenchmarkAblationPollInterval sweeps the lock-polling retry interval: the
// paper attributes the SS pathology to lock-attempt storms, so both very
// short (storm) and very long (grant latency) intervals should hurt.
func BenchmarkAblationPollInterval(b *testing.B) {
	prof := workload.Uniform(8192, 15e-6, 40e-6, 3)
	for _, poll := range []sim.Time{1e-6, 3e-6, 6e-6, 12e-6, 24e-6, 48e-6} {
		b.Run(fmt.Sprintf("poll=%.0fus", float64(poll)*1e6), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(prof)
				cfg.Cluster.Mem.PollInterval = poll
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				t = res.ParallelTime
			}
			b.ReportMetric(float64(t), "virtual-s")
		})
	}
}

// BenchmarkAblationQueueCapacity varies the local work-queue ring size.
// With fills serialized by the queue lock, capacity beyond one chunk should
// change little — evidence for the design choice in DESIGN.md.
func BenchmarkAblationQueueCapacity(b *testing.B) {
	prof := workload.Uniform(8192, 15e-6, 40e-6, 3)
	for _, cap := range []int{1, 2, 4, 16} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(prof)
				cfg.Intra = dls.GSS
				cfg.QueueCapacity = cap
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				t = res.ParallelTime
			}
			b.ReportMetric(float64(t), "virtual-s")
		})
	}
}

// BenchmarkAblationNoWait compares the three executors on the
// barrier-dominated configuration — the paper's §6 future-work question.
func BenchmarkAblationNoWait(b *testing.B) {
	prof := workload.Exponential(8192, 150e-6, 1903)
	for _, app := range []core.Approach{core.MPIOpenMP, core.MPIOpenMPNoWait, core.MPIMPI} {
		b.Run(app.String(), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Cluster:        cluster.MiniHPC(2),
					WorkersPerNode: 16,
					Inter:          dls.GSS,
					Intra:          dls.STATIC,
					Workload:       prof,
					Approach:       app,
					Seed:           1,
				})
				if err != nil {
					b.Fatal(err)
				}
				t = res.ParallelTime
			}
			b.ReportMetric(float64(t), "virtual-s")
		})
	}
}

// BenchmarkAblationExtendedRuntime fills the cells the paper could not run
// (TSS/FAC2 intra under MPI+OpenMP) using the extended libGOMP-style
// runtime, quantifying what the Intel-runtime limitation cost the baseline.
func BenchmarkAblationExtendedRuntime(b *testing.B) {
	for _, intra := range []dls.Technique{dls.TSS, dls.FAC2} {
		b.Run(intra.String(), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				res, err := hdls.Run(hdls.Config{
					App: hdls.Mandelbrot, Nodes: 2, Scale: benchScale,
					Inter: dls.GSS, Intra: intra,
					Approach:        hdls.MPIOpenMP,
					ExtendedRuntime: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				t = res.ParallelTime
			}
			b.ReportMetric(float64(t), "virtual-s")
		})
	}
}

// BenchmarkAblationManycoreKNL is the what-if the paper leaves on the
// table: its remaining four miniHPC nodes are 64-core Xeon Phis. More,
// slower cores sharing one queue stress the lock protocol harder, so the
// SS-intra pathology deepens while GSS+STATIC stays near its (lower) ideal.
func BenchmarkAblationManycoreKNL(b *testing.B) {
	prof := workload.MandelbrotProfile(benchScale)
	for _, intra := range []dls.Technique{dls.STATIC, dls.SS} {
		b.Run("KNL/"+intra.String(), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Cluster:        cluster.MiniHPCKNL(2),
					WorkersPerNode: 64,
					Inter:          dls.GSS,
					Intra:          intra,
					Workload:       prof,
					Approach:       core.MPIMPI,
					Seed:           1,
				})
				if err != nil {
					b.Fatal(err)
				}
				t = res.ParallelTime
			}
			b.ReportMetric(float64(t), "virtual-s")
		})
	}
}

// BenchmarkAblationHeterogeneousAWF runs the weighted/adaptive extension on
// a heterogeneous cluster via the real-executor path: AWF is the paper's
// cited related work for exactly this setting.
func BenchmarkAblationHeterogeneousAWF(b *testing.B) {
	prof := workload.Uniform(4096, 50e-6, 150e-6, 11)
	for _, inter := range []dls.Technique{dls.GSS, dls.FAC2} {
		b.Run(inter.String(), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Cluster:        cluster.MiniHPCHetero(2, 1.0, 0.6),
					WorkersPerNode: 16,
					Inter:          inter,
					Intra:          dls.GSS,
					Workload:       prof,
					Approach:       core.MPIMPI,
					Seed:           1,
				})
				if err != nil {
					b.Fatal(err)
				}
				t = res.ParallelTime
			}
			b.ReportMetric(float64(t), "virtual-s")
		})
	}
}
